//! Continuous background healing: the repair collective, cut into
//! bounded, resumable steps that interleave with live traffic.
//!
//! [`crate::repair`] heals a whole dump in one monolithic collective —
//! correct, but it monopolizes the network for as long as the damage
//! takes to mend, and a healer crash throws away everything the run had
//! re-replicated *planned* so far (the data survives — repair is
//! idempotent — but the next run re-scans from scratch). This module
//! converts that collective into an incremental state machine:
//!
//! * A [`HealCursor`] names a position inside the heal of one dump
//!   generation: the current [`HealStage`] plus high-water marks
//!   (`after_fp` / `after_owner` / `after_stripe`) inside the stage. The
//!   cursor is [`Wire`]-serializable, so an operator (or a drill
//!   harness) can persist it, kill the healer, and resume from the exact
//!   window where it died.
//! * [`heal_step_impl`] advances the cursor by one **bounded step**: a
//!   small collective over at most [`HealOptions::chunk_batch`] (or
//!   `owner_batch` / `stripe_batch`) items. Each step re-plans its
//!   window against the *current* cluster state with the same pure
//!   [`crate::repair::build_plan`] the monolithic repair uses, then
//!   post-filters the plan to the window — so healing under live
//!   `dump`/`restore` traffic never acts on stale inventory for longer
//!   than one window.
//! * Between steps the world is free: a foreground dump of a *newer*
//!   generation can run its own collectives, and the healer's next step
//!   simply sees (and skips) whatever the dump committed. In-flight
//!   generations are invisible to the healer by construction — chunk
//!   healing only considers fingerprints referenced by *committed*
//!   manifests of the cursor's generation, and an `Auto`/`Rs` stripe is
//!   content-addressed, so touching it concurrently is idempotent.
//! * The optional [`HealOptions::gc_before`] bound runs
//!   [`replidedup_storage::Cluster::gc_superseded`] as the first step,
//!   so superseded generations are collected *before* the scrub wastes
//!   bandwidth re-replicating data nothing references anymore.
//! * An optional [`RateLimit`] meters healing payload bytes through a
//!   deterministic debt-based [`TokenBucket`], bounding how hard the
//!   background healer competes with foreground collectives.
//!
//! Stage order: `Gc → Scrub → Chunks → Manifests → Stripes → Done` for
//! the dedup strategies, `Gc → Scrub → Blobs → Stripes → Done` for
//! `no-dedup`. The cursor is strictly monotonic — a step either advances
//! a high-water mark past a non-empty window or advances the stage past
//! an empty one — so a heal always terminates, and resuming from any
//! persisted cursor position converges to the same healed state
//! (re-running a window is idempotent: puts are content-addressed).

use std::collections::BTreeMap;
use std::time::Duration;

use replidedup_hash::{Fingerprint, FpHashSet};
use replidedup_mpi::wire::{FrameReader, FrameWriter, Wire, WireError, WireResult};
use replidedup_mpi::{Comm, Tag};
use replidedup_storage::{DumpId, GcStats, Manifest, SessionId, StripeKey};

use crate::config::Strategy;
use crate::dump::DumpContext;
use crate::global::{try_reduce_global_view, GlobalView};
use crate::repair::{build_plan, leader_of, lowest_live_leader, NodeInventory, RepairError};

const TAG_HEAL_CHUNKS: Tag = 0x5250_0009;
const TAG_HEAL_MANIFEST: Tag = 0x5250_000A;
const TAG_HEAL_BLOB: Tag = 0x5250_000B;

/// Phases a healing step may enter (trace span names). Unlike
/// [`crate::REPAIR_PHASES`] these repeat: every windowed step re-enters
/// `heal.plan` / `heal.transfer`, which is what lets a fault plan target
/// e.g. the *second* transfer window (`start:heal.transfer#2`).
pub const HEAL_PHASES: [&str; 5] = [
    "heal.gc",
    "heal.scrub",
    "heal.plan",
    "heal.stripes",
    "heal.transfer",
];

/// Rate limit for healing payload bytes: a debt-based token bucket that
/// lets `burst_bytes` through unmetered and then sleeps debits off at
/// `bytes_per_sec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained healing throughput bound, in payload bytes per second.
    pub bytes_per_sec: u64,
    /// Bytes the healer may move before the meter starts charging.
    pub burst_bytes: u64,
}

/// Tuning knobs for the incremental healer. Must be identical on every
/// rank driving the same heal (they shape the step's collectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealOptions {
    /// Fingerprints re-planned per [`HealStage::Chunks`] step.
    pub chunk_batch: usize,
    /// Owner ranks re-planned per [`HealStage::Manifests`] /
    /// [`HealStage::Blobs`] step.
    pub owner_batch: usize,
    /// Stripes re-planned per [`HealStage::Stripes`] step.
    pub stripe_batch: usize,
    /// Throughput bound on healing payload bytes (`None`: unthrottled).
    pub rate: Option<RateLimit>,
    /// Collect superseded generations older than this id in the
    /// [`HealStage::Gc`] step (`None`: skip collection).
    pub gc_before: Option<DumpId>,
}

impl Default for HealOptions {
    fn default() -> Self {
        Self {
            chunk_batch: 64,
            owner_batch: 16,
            stripe_batch: 32,
            rate: None,
            gc_before: None,
        }
    }
}

/// Deterministic debt-based limiter: [`TokenBucket::debit`] is pure
/// arithmetic returning how long the caller must pause, so tests can
/// replay the exact schedule without a clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    bytes_per_sec: u64,
    /// Remaining unmetered allowance; the burst at rest, zero while the
    /// meter is charging (debt is converted to a pause immediately).
    available: i128,
}

impl TokenBucket {
    /// A bucket holding the limit's full burst allowance.
    pub fn new(limit: RateLimit) -> Self {
        Self {
            bytes_per_sec: limit.bytes_per_sec,
            available: i128::from(limit.burst_bytes),
        }
    }

    /// Charge `bytes` against the allowance; returns the pause that pays
    /// off any debt at `bytes_per_sec`. A zero rate still terminates: it
    /// is treated as one byte per second.
    pub fn debit(&mut self, bytes: u64) -> Duration {
        self.available -= i128::from(bytes);
        if self.available >= 0 {
            return Duration::ZERO;
        }
        let debt = self.available.unsigned_abs();
        self.available = 0;
        let nanos = debt
            .saturating_mul(1_000_000_000)
            .checked_div(u128::from(self.bytes_per_sec.max(1)))
            .unwrap_or(0);
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }
}

/// Where a heal stands. Stages run in declaration order; the dedup
/// strategies skip [`HealStage::Blobs`], `no-dedup` skips
/// [`HealStage::Chunks`] and [`HealStage::Manifests`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealStage {
    /// Collect superseded generations (one step, optional).
    Gc,
    /// Scrub and quarantine corrupt chunk and shard copies (one step).
    Scrub,
    /// Re-replicate under-replicated chunks, one fingerprint window at a
    /// time.
    Chunks,
    /// Re-materialize lost manifests, one owner-rank window at a time.
    Manifests,
    /// Re-materialize lost raw blobs (`no-dedup`), one owner-rank window
    /// at a time.
    Blobs,
    /// Rebuild missing erasure-coded shards, one stripe window at a
    /// time.
    Stripes,
    /// Nothing left to heal for this generation.
    Done,
}

impl Wire for HealStage {
    fn encode(&self, buf: &mut Vec<u8>) {
        let d: u8 = match self {
            HealStage::Gc => 0,
            HealStage::Scrub => 1,
            HealStage::Chunks => 2,
            HealStage::Manifests => 3,
            HealStage::Blobs => 4,
            HealStage::Stripes => 5,
            HealStage::Done => 6,
        };
        d.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok(match u8::decode(input)? {
            0 => HealStage::Gc,
            1 => HealStage::Scrub,
            2 => HealStage::Chunks,
            3 => HealStage::Manifests,
            4 => HealStage::Blobs,
            5 => HealStage::Stripes,
            6 => HealStage::Done,
            _ => return Err(WireError::Malformed { what: "HealStage" }),
        })
    }
}

/// A resumable position inside the heal of one dump generation.
/// [`Wire`]-serializable — persist the bytes, kill the healer, decode
/// and resume; the windows already healed are simply found healthy and
/// skipped (puts are content-addressed, so overlap is idempotent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealCursor {
    /// The generation being healed.
    pub dump_id: DumpId,
    /// Current stage of the state machine.
    pub stage: HealStage,
    /// High-water fingerprint inside [`HealStage::Chunks`].
    pub after_fp: Option<Fingerprint>,
    /// High-water owner rank inside [`HealStage::Manifests`] /
    /// [`HealStage::Blobs`].
    pub after_owner: Option<u32>,
    /// High-water stripe inside [`HealStage::Stripes`].
    pub after_stripe: Option<StripeKey>,
    /// Bounded steps this cursor has been advanced through (across
    /// resumes, if the resumed cursor came from persisted bytes).
    pub steps_taken: u64,
}

impl HealCursor {
    /// A cursor at the start of the heal of `dump_id`.
    pub fn new(dump_id: DumpId) -> Self {
        Self {
            dump_id,
            stage: HealStage::Gc,
            after_fp: None,
            after_owner: None,
            after_stripe: None,
            steps_taken: 0,
        }
    }

    /// Has the state machine run out of work?
    pub fn is_done(&self) -> bool {
        self.stage == HealStage::Done
    }
}

impl Wire for HealCursor {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.dump_id.encode(buf);
        self.stage.encode(buf);
        self.after_fp.encode(buf);
        self.after_owner.encode(buf);
        self.after_stripe.encode(buf);
        self.steps_taken.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok(HealCursor {
            dump_id: DumpId::decode(input)?,
            stage: HealStage::decode(input)?,
            after_fp: Option::decode(input)?,
            after_owner: Option::decode(input)?,
            after_stripe: Option::decode(input)?,
            steps_taken: u64::decode(input)?,
        })
    }
}

/// What a heal (or a span of heal steps) did. Healing counts are
/// allreduced per step, so the report is identical on every rank that
/// drove the same steps. A report only covers the steps *this* run
/// drove — a resumed heal reports its own span; convergence is judged
/// by [`HealReport::is_fully_healed`] on the run that reached
/// [`HealStage::Done`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct HealReport {
    /// The [`crate::Replicator`] session that drove these steps
    /// ([`SessionId::DEFAULT`] for an unlabeled session).
    pub session: SessionId,
    /// Bounded steps driven.
    pub steps: u64,
    /// Chunk copies written to close replication deficits.
    pub chunks_healed: u64,
    /// Payload bytes moved for those chunk copies.
    pub bytes_re_replicated: u64,
    /// Manifest copies re-materialized.
    pub manifests_rematerialized: u64,
    /// Raw blob copies re-materialized (`no-dedup`).
    pub blobs_rematerialized: u64,
    /// Corrupt chunk copies quarantined by the scrub step.
    pub corrupt_quarantined: u64,
    /// Erasure-coded shards reconstructed and re-homed.
    pub shards_rebuilt: u64,
    /// Bytes of reconstructed shard payloads written back.
    pub bytes_reconstructed: u64,
    /// Parity-inconsistent shard copies quarantined by the scrub step.
    pub shards_quarantined: u64,
    /// What the [`HealStage::Gc`] step collected.
    pub gc: GcStats,
    /// Referenced fingerprints found beyond repair in a planned window.
    pub unrepairable_chunks: Vec<Fingerprint>,
    /// Owner ranks whose manifest has no surviving copy.
    pub unrepairable_manifests: Vec<u32>,
    /// Owner ranks whose raw blob has no surviving copy or stripe.
    pub unrepairable_blobs: Vec<u32>,
    /// Stripes below `k` surviving shards.
    pub unrepairable_stripes: Vec<StripeKey>,
}

impl HealReport {
    /// Did the steps this report covers leave nothing lost for good?
    pub fn is_fully_healed(&self) -> bool {
        self.unrepairable_chunks.is_empty()
            && self.unrepairable_manifests.is_empty()
            && self.unrepairable_blobs.is_empty()
            && self.unrepairable_stripes.is_empty()
    }

    /// Total payload bytes the healer moved or rewrote.
    pub fn heal_bytes(&self) -> u64 {
        self.bytes_re_replicated + self.bytes_reconstructed
    }
}

/// Pause for a debit if a limiter is active.
fn throttle(bucket: &mut Option<TokenBucket>, bytes: u64) {
    if let Some(b) = bucket.as_mut() {
        let wait = b.debit(bytes);
        if wait > Duration::ZERO {
            std::thread::sleep(wait);
        }
    }
}

/// Sum-reduce a counter vector so every rank agrees on the step's work.
fn allreduce_counts(comm: &mut Comm, counts: Vec<u64>) -> Result<Vec<u64>, RepairError> {
    comm.try_allreduce(counts, |a, b| {
        a.iter().zip(&b).map(|(x, y)| x + y).collect()
    })
    .map_err(RepairError::from)
}

/// The next stage after the scrub, by strategy.
fn first_data_stage(strategy: Strategy) -> HealStage {
    if strategy == Strategy::NoDedup {
        HealStage::Blobs
    } else {
        HealStage::Chunks
    }
}

/// Advance `cursor` by one bounded collective step, folding what the
/// step did into `report`. Collective: every rank of the world must call
/// this with an identical cursor and identical options, and all ranks
/// advance their cursors identically (every decision is a function of
/// allgathered data). A no-op once the cursor [`HealCursor::is_done`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn heal_step_impl(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    strategy: Strategy,
    k: u32,
    opts: &HealOptions,
    bucket: &mut Option<TokenBucket>,
    cursor: &mut HealCursor,
    report: &mut HealReport,
) -> Result<(), RepairError> {
    if cursor.is_done() {
        return Ok(());
    }
    let me = comm.rank();
    let n = comm.size();
    let cluster = ctx.cluster;
    let node = cluster.node_of(me);
    let i_lead = leader_of(cluster, node, n) == Some(me) && cluster.is_alive(node);

    match cursor.stage {
        HealStage::Done => {}
        HealStage::Gc => {
            if let Some(before) = opts.gc_before {
                comm.enter_phase("heal.gc");
                // One rank sweeps (the sweep is cluster-wide by itself);
                // the allreduce publishes its counts to everyone.
                let local = if lowest_live_leader(cluster, n) == Some(me) {
                    cluster.gc_superseded(before)
                } else {
                    GcStats::default()
                };
                let sums = allreduce_counts(
                    comm,
                    vec![
                        local.generations_collected,
                        local.manifests_removed,
                        local.blobs_removed,
                        local.chunks_removed,
                        local.shards_removed,
                        local.tombstones_removed,
                        local.bytes_reclaimed,
                    ],
                );
                comm.exit_phase("heal.gc");
                let sums = sums?;
                report.gc.merge(&GcStats {
                    generations_collected: sums[0],
                    manifests_removed: sums[1],
                    blobs_removed: sums[2],
                    chunks_removed: sums[3],
                    shards_removed: sums[4],
                    tombstones_removed: sums[5],
                    bytes_reclaimed: sums[6],
                });
                comm.tracer().counter("heal_generations_collected", sums[0]);
            }
            cursor.stage = HealStage::Scrub;
        }
        HealStage::Scrub => {
            comm.enter_phase("heal.scrub");
            let step = (|| -> Result<Vec<u64>, RepairError> {
                let mut corrupt = 0u64;
                let mut shards = 0u64;
                if i_lead {
                    let found = cluster.scrub(node, ctx.hasher)?;
                    for (nd, fp) in &found.corrupt {
                        if cluster.quarantine_chunk(*nd, fp)? {
                            corrupt += 1;
                        }
                    }
                }
                if lowest_live_leader(cluster, n) == Some(me) {
                    let found = cluster.scrub_stripes(ctx.hasher);
                    for (nd, key, index) in &found.stripe_mismatches {
                        if cluster.quarantine_shard(*nd, *key, *index)? {
                            shards += 1;
                        }
                    }
                }
                allreduce_counts(comm, vec![corrupt, shards])
            })();
            comm.exit_phase("heal.scrub");
            let sums = step?;
            report.corrupt_quarantined += sums[0];
            report.shards_quarantined += sums[1];
            cursor.stage = first_data_stage(strategy);
        }
        HealStage::Chunks => {
            comm.enter_phase("heal.plan");
            // Window: each live leader offers its first `chunk_batch`
            // referenced fingerprints past the high-water mark; the
            // sorted union (re-truncated) is the window every rank
            // plans. Committed manifests only — an in-flight dump of a
            // newer generation has nothing here to offer yet.
            let mine = if i_lead {
                referenced_after(ctx, node, cursor.after_fp, opts.chunk_batch)?
            } else {
                Vec::new()
            };
            let offered = comm.try_allgather(mine);
            comm.exit_phase("heal.plan");
            let mut window: Vec<Fingerprint> = offered?.into_iter().flatten().collect();
            window.sort_unstable();
            window.dedup();
            window.truncate(opts.chunk_batch);
            let Some(&last) = window.last() else {
                cursor.stage = HealStage::Manifests;
                cursor.steps_taken += 1;
                report.steps += 1;
                return Ok(());
            };

            comm.enter_phase("heal.plan");
            let step = (|| -> Result<_, RepairError> {
                let view = if i_lead {
                    let mut held = cluster.chunk_fps(node)?;
                    held.retain(|fp| window.binary_search(fp).is_ok());
                    GlobalView::from_local(me, held, usize::MAX)
                } else {
                    GlobalView::default()
                };
                let mut inv = NodeInventory::default();
                if i_lead {
                    inv.leads_live_node = true;
                    inv.referenced = window
                        .iter()
                        .copied()
                        .filter(|fp| mine_references(ctx, node, fp))
                        .collect();
                    inv.shards = cluster.shard_inventory(node)?;
                    inv.shards.retain(|(key, _)| match key {
                        StripeKey::Chunk(fp) => window.binary_search(fp).is_ok(),
                        StripeKey::Blob { .. } => false,
                    });
                }
                let global = try_reduce_global_view(comm, view, k, usize::MAX);
                let world_inv = comm.try_allgather(inv);
                Ok((global?, world_inv?))
            })();
            comm.exit_phase("heal.plan");
            let (global, world_inv) = step?;
            let plan = windowed_plan(ctx, strategy, k, n, &global, &world_inv);

            comm.enter_phase("heal.transfer");
            let moved = transfer_chunks(comm, ctx, &plan.chunk_moves, bucket)
                .and_then(|(healed, bytes)| allreduce_counts(comm, vec![healed, bytes]));
            comm.exit_phase("heal.transfer");
            let sums = moved?;
            report.chunks_healed += sums[0];
            report.bytes_re_replicated += sums[1];
            comm.tracer().counter("heal_chunks_healed", sums[0]);
            comm.tracer().counter("heal_bytes", sums[1]);
            // The window's unrepairables are final facts (zero copies
            // and no viable stripe cluster-wide); the rest of the plan
            // (manifests, stripes) is out of scope for this stage.
            merge_fps(&mut report.unrepairable_chunks, plan.unrepairable_chunks);
            cursor.after_fp = Some(last);
        }
        HealStage::Manifests => {
            let window = owner_window(cursor.after_owner, n, opts.owner_batch);
            let Some(&last) = window.last() else {
                cursor.stage = HealStage::Stripes;
                cursor.steps_taken += 1;
                report.steps += 1;
                return Ok(());
            };
            comm.enter_phase("heal.plan");
            let step = (|| -> Result<_, RepairError> {
                let mut inv = NodeInventory::default();
                if i_lead {
                    inv.leads_live_node = true;
                    inv.manifest_owners = cluster.manifest_owners(node, ctx.dump_id)?;
                    inv.manifest_owners
                        .retain(|r| window.binary_search(r).is_ok());
                    inv.absent = cluster.absent_ranks(node, ctx.dump_id)?;
                    inv.absent.retain(|r| window.binary_search(r).is_ok());
                }
                comm.try_allgather(inv).map_err(RepairError::from)
            })();
            comm.exit_phase("heal.plan");
            let world_inv = step?;
            let mut plan = windowed_plan(ctx, strategy, k, n, &GlobalView::default(), &world_inv);
            // The windowed inventory legitimately knows nothing about
            // owners outside the window, so the plan flags them all as
            // lost; only in-window verdicts are real.
            plan.unrepairable_manifests
                .retain(|r| window.binary_search(r).is_ok());
            plan.manifest_moves
                .retain(|(_, _, owner)| window.binary_search(owner).is_ok());

            comm.enter_phase("heal.transfer");
            let moved = transfer_manifests(comm, ctx, &plan.manifest_moves)
                .and_then(|remat| allreduce_counts(comm, vec![remat]));
            comm.exit_phase("heal.transfer");
            let sums = moved?;
            report.manifests_rematerialized += sums[0];
            comm.tracer()
                .counter("heal_manifests_rematerialized", sums[0]);
            merge_owners(
                &mut report.unrepairable_manifests,
                plan.unrepairable_manifests,
            );
            cursor.after_owner = Some(last);
        }
        HealStage::Blobs => {
            let window = owner_window(cursor.after_owner, n, opts.owner_batch);
            let Some(&last) = window.last() else {
                cursor.stage = HealStage::Stripes;
                cursor.steps_taken += 1;
                report.steps += 1;
                return Ok(());
            };
            comm.enter_phase("heal.plan");
            let step = (|| -> Result<_, RepairError> {
                let mut inv = NodeInventory::default();
                if i_lead {
                    inv.leads_live_node = true;
                    inv.blob_owners = cluster.blob_owners(node, ctx.dump_id)?;
                    inv.blob_owners.retain(|r| window.binary_search(r).is_ok());
                    inv.absent = cluster.absent_ranks(node, ctx.dump_id)?;
                    inv.absent.retain(|r| window.binary_search(r).is_ok());
                    // A blob with no replica is healthy if its stripe
                    // survives — the plan needs the window's Blob
                    // stripes to judge that.
                    inv.shards = cluster.shard_inventory(node)?;
                    inv.shards.retain(|(key, _)| match key {
                        StripeKey::Blob { owner, dump_id } => {
                            *dump_id == ctx.dump_id && window.binary_search(owner).is_ok()
                        }
                        StripeKey::Chunk(_) => false,
                    });
                }
                comm.try_allgather(inv).map_err(RepairError::from)
            })();
            comm.exit_phase("heal.plan");
            let world_inv = step?;
            let mut plan = windowed_plan(ctx, strategy, k, n, &GlobalView::default(), &world_inv);
            plan.unrepairable_blobs
                .retain(|r| window.binary_search(r).is_ok());
            plan.blob_moves
                .retain(|(_, _, owner)| window.binary_search(owner).is_ok());

            comm.enter_phase("heal.transfer");
            let moved = transfer_blobs(comm, ctx, &plan.blob_moves, bucket)
                .and_then(|(remat, bytes)| allreduce_counts(comm, vec![remat, bytes]));
            comm.exit_phase("heal.transfer");
            let sums = moved?;
            report.blobs_rematerialized += sums[0];
            report.bytes_re_replicated += sums[1];
            comm.tracer().counter("heal_blobs_rematerialized", sums[0]);
            comm.tracer().counter("heal_bytes", sums[1]);
            merge_owners(&mut report.unrepairable_blobs, plan.unrepairable_blobs);
            cursor.after_owner = Some(last);
        }
        HealStage::Stripes => {
            comm.enter_phase("heal.plan");
            let mine = if i_lead {
                stripes_after(ctx, node, cursor.after_stripe, opts.stripe_batch)?
            } else {
                Vec::new()
            };
            let offered = comm.try_allgather(mine);
            comm.exit_phase("heal.plan");
            let mut window: Vec<StripeKey> = offered?.into_iter().flatten().collect();
            window.sort_unstable();
            window.dedup();
            window.truncate(opts.stripe_batch);
            let Some(&last) = window.last() else {
                cursor.stage = HealStage::Done;
                cursor.steps_taken += 1;
                report.steps += 1;
                return Ok(());
            };

            comm.enter_phase("heal.plan");
            let step = (|| -> Result<_, RepairError> {
                let mut inv = NodeInventory::default();
                if i_lead {
                    inv.leads_live_node = true;
                    inv.shards = cluster.shard_inventory(node)?;
                    inv.shards
                        .retain(|(key, _)| window.binary_search(key).is_ok());
                }
                comm.try_allgather(inv).map_err(RepairError::from)
            })();
            comm.exit_phase("heal.plan");
            let world_inv = step?;
            let plan = windowed_plan(ctx, strategy, k, n, &GlobalView::default(), &world_inv);

            comm.enter_phase("heal.stripes");
            let rebuilt = (|| -> Result<_, RepairError> {
                let mut shards_rebuilt = 0u64;
                let mut bytes_reconstructed = 0u64;
                for (leader, key, index) in &plan.shard_rebuilds {
                    if *leader != me {
                        continue;
                    }
                    if let Some(shard) = cluster.rebuild_shard(*key, *index) {
                        let len = shard.data.len() as u64;
                        throttle(bucket, len);
                        if cluster.put_shard(node, *key, shard.meta, shard.data)? {
                            shards_rebuilt += 1;
                            bytes_reconstructed += len;
                        }
                    }
                }
                allreduce_counts(comm, vec![shards_rebuilt, bytes_reconstructed])
            })();
            comm.exit_phase("heal.stripes");
            let sums = rebuilt?;
            report.shards_rebuilt += sums[0];
            report.bytes_reconstructed += sums[1];
            comm.tracer().counter("heal_shards_rebuilt", sums[0]);
            comm.tracer().counter("heal_bytes", sums[1]);
            let mut lost = plan.unrepairable_stripes;
            lost.retain(|key| window.binary_search(key).is_ok());
            report.unrepairable_stripes.extend(lost);
            report.unrepairable_stripes.sort_unstable();
            report.unrepairable_stripes.dedup();
            cursor.after_stripe = Some(last);
        }
    }
    cursor.steps_taken += 1;
    report.steps += 1;
    Ok(())
}

/// Drive `cursor` to [`HealStage::Done`]. Collective. Resuming from a
/// persisted mid-heal cursor is the intended use — the already-healed
/// prefix is skipped by construction.
pub(crate) fn heal_impl(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    strategy: Strategy,
    k: u32,
    opts: &HealOptions,
    cursor: &mut HealCursor,
) -> Result<HealReport, RepairError> {
    let mut report = HealReport::default();
    let mut bucket = opts.rate.map(TokenBucket::new);
    while !cursor.is_done() {
        heal_step_impl(
            comm,
            ctx,
            strategy,
            k,
            opts,
            &mut bucket,
            cursor,
            &mut report,
        )?;
    }
    Ok(report)
}

/// This node's sorted referenced fingerprints for the cursor's dump,
/// strictly past `after`, capped at `batch`.
fn referenced_after(
    ctx: &DumpContext<'_>,
    node: replidedup_storage::NodeId,
    after: Option<Fingerprint>,
    batch: usize,
) -> Result<Vec<Fingerprint>, RepairError> {
    let mut refs = FpHashSet::default();
    for m in ctx.cluster.manifests_for(node, ctx.dump_id)? {
        refs.extend(m.chunks.iter().copied());
    }
    let mut out: Vec<Fingerprint> = refs
        .into_iter()
        .filter(|fp| after.is_none_or(|hw| *fp > hw))
        .collect();
    out.sort_unstable();
    out.truncate(batch);
    Ok(out)
}

/// Does any committed manifest on `node` for the cursor's dump reference
/// `fp`? (Window-sized lookups only — the window is small by design.)
fn mine_references(
    ctx: &DumpContext<'_>,
    node: replidedup_storage::NodeId,
    fp: &Fingerprint,
) -> bool {
    ctx.cluster
        .manifests_for(node, ctx.dump_id)
        .map(|ms| ms.iter().any(|m| m.chunks.contains(fp)))
        .unwrap_or(false)
}

/// This node's sorted stripe keys strictly past `after`, capped.
fn stripes_after(
    ctx: &DumpContext<'_>,
    node: replidedup_storage::NodeId,
    after: Option<StripeKey>,
    batch: usize,
) -> Result<Vec<StripeKey>, RepairError> {
    let mut keys: Vec<StripeKey> = ctx
        .cluster
        .shard_inventory(node)?
        .into_iter()
        .map(|(key, _)| key)
        .filter(|key| after.is_none_or(|hw| *key > hw))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys.truncate(batch);
    Ok(keys)
}

/// The owner-rank window past `after`: at most `batch` ranks of the
/// world, in order. Deterministic on every rank with no collective.
fn owner_window(after: Option<u32>, world: u32, batch: usize) -> Vec<u32> {
    let start = after.map_or(0, |o| o.saturating_add(1));
    (start..world).take(batch).collect()
}

/// Run [`build_plan`] over a windowed inventory with the world's real
/// leader topology.
fn windowed_plan(
    ctx: &DumpContext<'_>,
    strategy: Strategy,
    k: u32,
    n: u32,
    global: &GlobalView,
    world_inv: &[NodeInventory],
) -> crate::repair::RepairPlan {
    let cluster = ctx.cluster;
    let home_leader: Vec<u32> = (0..n)
        .map(|r| leader_of(cluster, cluster.node_of(r), n).unwrap_or(r))
        .collect();
    let leader_of_node: Vec<Option<u32>> = (0..cluster.node_count())
        .map(|nd| leader_of(cluster, nd, n).filter(|_| cluster.is_alive(nd)))
        .collect();
    build_plan(
        k,
        strategy,
        ctx.dump_id,
        global,
        world_inv,
        &home_leader,
        &leader_of_node,
    )
}

fn merge_fps(into: &mut Vec<Fingerprint>, add: Vec<Fingerprint>) {
    into.extend(add);
    into.sort_unstable();
    into.dedup();
}

fn merge_owners(into: &mut Vec<u32>, add: Vec<u32>) {
    into.extend(add);
    into.sort_unstable();
    into.dedup();
}

/// Execute the window's chunk moves: sends first (buffered), then the
/// receives the plan says are owed to me. Returns local
/// `(chunks_healed, bytes_received)`. Source-side rate limiting: the
/// debit happens before the frame leaves, so a throttled healer slows
/// its own sends instead of stalling receivers mid-recv.
fn transfer_chunks(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    moves: &[(u32, u32, Fingerprint)],
    bucket: &mut Option<TokenBucket>,
) -> Result<(u64, u64), RepairError> {
    let me = comm.rank();
    let cluster = ctx.cluster;
    let node = cluster.node_of(me);
    let mut out: BTreeMap<u32, Vec<Fingerprint>> = BTreeMap::new();
    for (src, dst, fp) in moves {
        if *src == me {
            out.entry(*dst).or_default().push(*fp);
        }
    }
    for (dst, fps) in &out {
        let mut batch = FrameWriter::new();
        let mut batch_bytes = 0u64;
        for fp in fps {
            let data = cluster.get_chunk(node, fp)?;
            batch_bytes += data.len() as u64;
            batch.put(fp);
            batch.attach(data);
        }
        throttle(bucket, batch_bytes);
        comm.try_send_frame(*dst, TAG_HEAL_CHUNKS, batch.finish())?;
    }
    let mut srcs: Vec<u32> = moves
        .iter()
        .filter(|(_, dst, _)| *dst == me)
        .map(|(src, _, _)| *src)
        .collect();
    srcs.sort_unstable();
    srcs.dedup();
    let mut healed = 0u64;
    let mut bytes = 0u64;
    for src in srcs {
        let mut batch = FrameReader::new(comm.try_recv_frame(src, TAG_HEAL_CHUNKS)?);
        while batch.remaining() > 0 {
            let fp: Fingerprint = batch
                .get()
                .map_err(|_| RepairError::CorruptFrame { from: src })?;
            let data = batch
                .take_payload()
                .map_err(|_| RepairError::CorruptFrame { from: src })?;
            bytes += data.len() as u64;
            if cluster.put_chunk(node, fp, data.into_bytes())? {
                healed += 1;
            }
        }
    }
    Ok((healed, bytes))
}

/// Execute the window's manifest moves. Returns local re-materialization
/// count. Manifests are metadata-sized, so they ride unmetered.
fn transfer_manifests(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    moves: &[(u32, u32, u32)],
) -> Result<u64, RepairError> {
    let me = comm.rank();
    let cluster = ctx.cluster;
    let node = cluster.node_of(me);
    let mut out: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (src, dst, owner) in moves {
        if *src == me {
            out.entry(*dst).or_default().push(*owner);
        }
    }
    for (dst, owners) in &out {
        let mut batch: Vec<Manifest> = Vec::with_capacity(owners.len());
        for owner in owners {
            batch.push(cluster.get_manifest(node, *owner, ctx.dump_id)?);
        }
        comm.try_send_val(*dst, TAG_HEAL_MANIFEST, &batch)?;
    }
    let mut srcs: Vec<u32> = moves
        .iter()
        .filter(|(_, dst, _)| *dst == me)
        .map(|(src, _, _)| *src)
        .collect();
    srcs.sort_unstable();
    srcs.dedup();
    let mut remat = 0u64;
    for src in srcs {
        let batch: Vec<Manifest> = comm.try_recv_val(src, TAG_HEAL_MANIFEST)?;
        for m in batch {
            cluster.put_manifest(node, m)?;
            remat += 1;
        }
    }
    Ok(remat)
}

/// Execute the window's blob moves. Returns local
/// `(blobs_rematerialized, bytes_received)`.
fn transfer_blobs(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    moves: &[(u32, u32, u32)],
    bucket: &mut Option<TokenBucket>,
) -> Result<(u64, u64), RepairError> {
    let me = comm.rank();
    let cluster = ctx.cluster;
    let node = cluster.node_of(me);
    let mut out: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (src, dst, owner) in moves {
        if *src == me {
            out.entry(*dst).or_default().push(*owner);
        }
    }
    for (dst, owners) in &out {
        let mut batch = FrameWriter::new();
        let mut batch_bytes = 0u64;
        for owner in owners {
            let data = cluster.get_blob(node, *owner, ctx.dump_id)?;
            batch_bytes += data.len() as u64;
            batch.put(owner);
            batch.attach(data);
        }
        throttle(bucket, batch_bytes);
        comm.try_send_frame(*dst, TAG_HEAL_BLOB, batch.finish())?;
    }
    let mut srcs: Vec<u32> = moves
        .iter()
        .filter(|(_, dst, _)| *dst == me)
        .map(|(src, _, _)| *src)
        .collect();
    srcs.sort_unstable();
    srcs.dedup();
    let mut remat = 0u64;
    let mut bytes = 0u64;
    for src in srcs {
        let mut batch = FrameReader::new(comm.try_recv_frame(src, TAG_HEAL_BLOB)?);
        while batch.remaining() > 0 {
            let owner: u32 = batch
                .get()
                .map_err(|_| RepairError::CorruptFrame { from: src })?;
            let data = batch
                .take_payload()
                .map_err(|_| RepairError::CorruptFrame { from: src })?;
            bytes += data.len() as u64;
            cluster.put_blob(node, owner, ctx.dump_id, data.into_bytes())?;
            remat += 1;
        }
    }
    Ok((remat, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Replicator;
    use replidedup_mpi::WorldConfig;
    use replidedup_storage::{Cluster, Placement};

    #[test]
    fn cursor_wire_roundtrip_covers_every_stage() {
        for stage in [
            HealStage::Gc,
            HealStage::Scrub,
            HealStage::Chunks,
            HealStage::Manifests,
            HealStage::Blobs,
            HealStage::Stripes,
            HealStage::Done,
        ] {
            let c = HealCursor {
                dump_id: 42,
                stage,
                after_fp: Some(Fingerprint::synthetic(9)),
                after_owner: Some(3),
                after_stripe: Some(StripeKey::Blob {
                    owner: 1,
                    dump_id: 42,
                }),
                steps_taken: 17,
            };
            assert_eq!(HealCursor::from_bytes(&c.to_bytes()).unwrap(), c);
        }
        let bad = [7u8]; // no such stage discriminant
        assert_eq!(
            HealStage::from_bytes(&bad),
            Err(WireError::Malformed { what: "HealStage" })
        );
    }

    #[test]
    fn token_bucket_debt_schedule_is_pure_and_saturating() {
        let mut b = TokenBucket::new(RateLimit {
            bytes_per_sec: 1_000,
            burst_bytes: 500,
        });
        assert_eq!(b.debit(500), Duration::ZERO, "the burst rides free");
        // 250 bytes of debt at 1000 B/s = 250 ms, and the debt resets.
        assert_eq!(b.debit(250), Duration::from_millis(250));
        assert_eq!(b.debit(1_000), Duration::from_secs(1));
        // A zero rate must not divide by zero or hang forever.
        let mut z = TokenBucket::new(RateLimit {
            bytes_per_sec: 0,
            burst_bytes: 0,
        });
        assert_eq!(z.debit(3), Duration::from_secs(3));
        // Huge debits saturate (at u64::MAX nanos) instead of
        // overflowing the nanosecond arithmetic.
        let mut h = TokenBucket::new(RateLimit {
            bytes_per_sec: 1,
            burst_bytes: 0,
        });
        assert_eq!(h.debit(u64::MAX), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn owner_windows_partition_the_world_monotonically() {
        assert_eq!(owner_window(None, 5, 2), vec![0, 1]);
        assert_eq!(owner_window(Some(1), 5, 2), vec![2, 3]);
        assert_eq!(owner_window(Some(3), 5, 2), vec![4]);
        assert_eq!(owner_window(Some(4), 5, 2), Vec::<u32>::new());
        assert_eq!(owner_window(Some(u32::MAX), 5, 2), Vec::<u32>::new());
    }

    /// A healthy dump heals to Done in bounded steps with zero work, and
    /// every rank's cursor walks the identical stage sequence.
    #[test]
    fn healthy_cluster_heals_to_done_with_no_work() {
        let cluster = Cluster::new(Placement::one_per_node(4));
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(2)
            .chunk_size(64)
            .build()
            .unwrap();
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let buf = vec![comm.rank() as u8 + 1; 256];
                repl.dump(comm, 1, buf).unwrap();
                let mut cursor = HealCursor::new(1);
                let report = repl.heal_from(comm, &mut cursor).unwrap();
                (cursor, report)
            })
            .expect_all();
        let (c0, r0) = &out.results[0];
        assert!(c0.is_done());
        assert!(r0.is_fully_healed());
        assert_eq!(r0.chunks_healed, 0, "healthy data plans no moves");
        assert_eq!(r0.heal_bytes(), 0);
        assert!(r0.steps >= 4, "gc, scrub, window walks, stage exits");
        for (c, r) in &out.results {
            assert_eq!((c, r), (c0, r0), "all ranks agree on cursor and report");
        }
    }

    /// Losing a node and healing step-by-step re-replicates everything;
    /// a follow-up monolithic repair finds zero remaining work.
    #[test]
    fn stepwise_heal_converges_and_leaves_repair_nothing() {
        let cluster = Cluster::new(Placement::one_per_node(4));
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(3)
            .chunk_size(32)
            .build()
            .unwrap();
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let buf = vec![comm.rank() as u8 * 3 + 1; 400];
                repl.dump(comm, 1, buf.clone()).unwrap();
                comm.barrier();
                if comm.rank() == 0 {
                    repl.cluster().fail_node(2);
                    repl.cluster().revive_node(2);
                }
                comm.barrier();
                let mut cursor = HealCursor::new(1);
                let mut report = HealReport::default();
                let mut steps = 0u32;
                while repl.heal_step(comm, &mut cursor, &mut report).unwrap() {
                    steps += 1;
                    assert!(steps < 1_000, "the cursor must be monotonic");
                }
                let after = repl.repair(comm, 1).unwrap();
                (report, after, repl.restore(comm, 1).unwrap(), buf)
            })
            .expect_all();
        for (report, after, restored, buf) in out.results {
            assert!(report.is_fully_healed());
            assert!(report.chunks_healed > 0, "the lost node's copies return");
            assert!(after.is_fully_healed());
            assert_eq!(after.chunks_healed, 0, "heal left repair no work");
            assert_eq!(after.manifests_rematerialized, 0);
            assert_eq!(restored, buf);
        }
    }

    /// A cursor persisted mid-heal (Wire round-trip) resumes to the same
    /// converged state: killing the healer costs progress, not data.
    #[test]
    fn heal_resumes_from_persisted_cursor_bytes() {
        let cluster = Cluster::new(Placement::one_per_node(3));
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(3)
            .chunk_size(32)
            .build()
            .unwrap();
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let buf = vec![comm.rank() as u8 + 5; 320];
                repl.dump(comm, 1, buf.clone()).unwrap();
                comm.barrier();
                if comm.rank() == 0 {
                    repl.cluster().fail_node(1);
                    repl.cluster().revive_node(1);
                }
                comm.barrier();
                // Drive three steps, "kill" the healer, persist the cursor.
                let mut cursor = HealCursor::new(1);
                let mut report = HealReport::default();
                for _ in 0..3 {
                    repl.heal_step(comm, &mut cursor, &mut report).unwrap();
                }
                let persisted = cursor.to_bytes();
                drop(cursor);
                // A fresh healer resumes from the decoded bytes.
                let mut resumed = HealCursor::from_bytes(&persisted).unwrap();
                assert!(!resumed.is_done(), "mid-heal snapshot");
                let tail = repl.heal_from(comm, &mut resumed).unwrap();
                (tail, repl.restore(comm, 1).unwrap(), buf)
            })
            .expect_all();
        for (tail, restored, buf) in out.results {
            assert!(tail.is_fully_healed());
            assert_eq!(restored, buf);
        }
    }

    /// The no-dedup strategy walks the blob stage instead of
    /// chunks/manifests and still converges.
    #[test]
    fn no_dedup_heal_rematerializes_blobs() {
        let cluster = Cluster::new(Placement::one_per_node(3));
        let repl = Replicator::builder(Strategy::NoDedup)
            .cluster(&cluster)
            .replication(2)
            .chunk_size(64)
            .build()
            .unwrap();
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let buf = vec![comm.rank() as u8 + 9; 200];
                repl.dump(comm, 1, buf.clone()).unwrap();
                comm.barrier();
                if comm.rank() == 0 {
                    repl.cluster().fail_node(0);
                    repl.cluster().revive_node(0);
                }
                comm.barrier();
                let mut cursor = HealCursor::new(1);
                let report = repl.heal_from(comm, &mut cursor).unwrap();
                (report, repl.restore(comm, 1).unwrap(), buf)
            })
            .expect_all();
        for (report, restored, buf) in out.results {
            assert!(report.is_fully_healed());
            assert!(report.blobs_rematerialized > 0);
            assert_eq!(report.chunks_healed, 0, "no chunk stage under no-dedup");
            assert_eq!(restored, buf);
        }
    }

    /// `gc_before` collects the superseded generation in the first step
    /// and the heal then converges on the surviving one.
    #[test]
    fn gc_step_collects_superseded_generations_before_healing() {
        let cluster = Cluster::new(Placement::one_per_node(3));
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(2)
            .chunk_size(64)
            .heal_options(HealOptions {
                gc_before: Some(2),
                ..HealOptions::default()
            })
            .build()
            .unwrap();
        let out = WorldConfig::default()
            .launch(3, |comm| {
                repl.dump(comm, 1, vec![comm.rank() as u8 + 1; 128])
                    .unwrap();
                let buf = vec![comm.rank() as u8 + 101; 128];
                repl.dump(comm, 2, buf.clone()).unwrap();
                comm.barrier();
                let mut cursor = HealCursor::new(2);
                let report = repl.heal_from(comm, &mut cursor).unwrap();
                (report, repl.restore(comm, 2).unwrap(), buf)
            })
            .expect_all();
        for (report, restored, buf) in out.results {
            assert_eq!(report.gc.generations_collected, 1, "gen 1 collected");
            assert!(report.gc.bytes_reclaimed > 0);
            assert!(report.is_fully_healed());
            assert_eq!(restored, buf);
        }
        assert_eq!(cluster.generations(), vec![2], "only gen 2 survives");
    }

    /// A rate-limited heal moves the same bytes as an unthrottled one —
    /// the limiter shapes time, never the outcome.
    #[test]
    fn rate_limit_changes_pacing_not_convergence() {
        let run = |rate: Option<RateLimit>| {
            let cluster = Cluster::new(Placement::one_per_node(3));
            let repl = Replicator::builder(Strategy::CollDedup)
                .cluster(&cluster)
                .replication(3)
                .chunk_size(32)
                .heal_options(HealOptions {
                    rate,
                    ..HealOptions::default()
                })
                .build()
                .unwrap();
            let out = WorldConfig::default()
                .launch(3, |comm| {
                    repl.dump(comm, 1, vec![comm.rank() as u8 + 1; 192])
                        .unwrap();
                    comm.barrier();
                    if comm.rank() == 0 {
                        repl.cluster().fail_node(2);
                        repl.cluster().revive_node(2);
                    }
                    comm.barrier();
                    let mut cursor = HealCursor::new(1);
                    repl.heal_from(comm, &mut cursor).unwrap()
                })
                .expect_all();
            out.results.into_iter().next().unwrap()
        };
        let free = run(None);
        let throttled = run(Some(RateLimit {
            bytes_per_sec: 1 << 20,
            burst_bytes: 64,
        }));
        assert!(free.is_fully_healed() && throttled.is_fully_healed());
        assert_eq!(free.heal_bytes(), throttled.heal_bytes());
        assert_eq!(free.chunks_healed, throttled.chunks_healed);
    }
}
