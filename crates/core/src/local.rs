//! Phase one of the two-phase deduplication strategy: local dedup.
//!
//! "In the first phase, each process identifies the duplicate chunks of its
//! own dataset and keeps only one copy, which results in a set of locally
//! unique fingerprints." (Section III-B)
//!
//! The [`LocalIndex`] also remembers, for every locally unique fingerprint,
//! the first chunk index where it occurs, so the exchange phase can slice
//! the chunk bytes back out of the caller's buffer without copying the
//! dataset.

use replidedup_hash::{
    fingerprint_ranges, fingerprint_ranges_parallel, ChunkHasher, ChunkRange, Chunker, Fingerprint,
    FpHashMap,
};

/// Result of locally deduplicating one rank's buffer.
///
/// Chunk geometry is carried as explicit per-chunk byte ranges rather than
/// a fixed stride, so content-defined chunkers (variable-length chunks)
/// flow through the same index as the paper's fixed-size pages.
#[derive(Debug, Clone)]
pub struct LocalIndex {
    /// Fingerprint of every chunk, in buffer order (the manifest recipe).
    pub in_order: Vec<Fingerprint>,
    /// Byte range of every chunk, parallel to `in_order`.
    pub ranges: Vec<ChunkRange>,
    /// Locally unique fingerprints mapped to the first chunk index holding
    /// their bytes and the number of local occurrences.
    pub unique: FpHashMap<LocalChunk>,
    /// Total buffer length in bytes.
    pub total_len: usize,
}

/// Per-unique-fingerprint bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalChunk {
    /// First chunk index (into the buffer) holding these bytes.
    pub first_index: u32,
    /// How many chunks of this buffer carry this fingerprint.
    pub occurrences: u32,
}

impl LocalIndex {
    /// Chunk `buf` with `chunker`, fingerprint every chunk, and
    /// deduplicate locally.
    pub fn build(
        hasher: &(dyn ChunkHasher + Sync),
        buf: &[u8],
        chunker: &dyn Chunker,
        parallel: bool,
    ) -> Self {
        let ranges = chunker.chunks(buf);
        let in_order = if parallel {
            fingerprint_ranges_parallel(hasher, buf, &ranges)
        } else {
            fingerprint_ranges(hasher, buf, &ranges)
        };
        let mut unique: FpHashMap<LocalChunk> = FpHashMap::default();
        unique.reserve(in_order.len());
        for (idx, fp) in in_order.iter().enumerate() {
            unique
                .entry(*fp)
                .and_modify(|c| c.occurrences += 1)
                .or_insert(LocalChunk {
                    first_index: idx as u32,
                    occurrences: 1,
                });
        }
        Self {
            in_order,
            ranges,
            unique,
            total_len: buf.len(),
        }
    }

    /// Number of chunks in the buffer (duplicates included).
    pub fn chunk_count(&self) -> usize {
        self.in_order.len()
    }

    /// Number of locally unique chunks.
    pub fn unique_count(&self) -> usize {
        self.unique.len()
    }

    /// Byte range of chunk `index` within the original buffer.
    pub fn chunk_range(&self, index: u32) -> std::ops::Range<usize> {
        let r = self.ranges[index as usize];
        r.start..r.end
    }

    /// Per-chunk byte lengths in buffer order (the manifest's geometry).
    pub fn chunk_lens(&self) -> Vec<u32> {
        self.ranges.iter().map(|r| r.len() as u32).collect()
    }

    /// Borrow the bytes of the canonical (first) occurrence of `fp`.
    /// Returns `None` when the fingerprint is not local.
    pub fn chunk_bytes<'a>(&self, buf: &'a [u8], fp: &Fingerprint) -> Option<&'a [u8]> {
        let c = self.unique.get(fp)?;
        Some(&buf[self.chunk_range(c.first_index)])
    }

    /// Total bytes of locally unique content (Figure 3(a)'s `local-dedup`
    /// series sums this over ranks). Tail chunks count their true length.
    pub fn unique_bytes(&self, buf_len: usize) -> u64 {
        debug_assert_eq!(buf_len, self.total_len);
        self.unique
            .values()
            .map(|c| self.chunk_range(c.first_index).len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replidedup_hash::{FixedChunker, GearChunker, GearParams, Sha1ChunkHasher};

    fn build(buf: &[u8], cs: usize) -> LocalIndex {
        LocalIndex::build(&Sha1ChunkHasher, buf, &FixedChunker::new(cs), false)
    }

    #[test]
    fn all_identical_chunks_dedup_to_one() {
        let buf = vec![9u8; 32 * 1024];
        let idx = build(&buf, 4096);
        assert_eq!(idx.chunk_count(), 8);
        assert_eq!(idx.unique_count(), 1);
        let c = idx.unique.values().next().unwrap();
        assert_eq!(c.first_index, 0);
        assert_eq!(c.occurrences, 8);
        assert_eq!(idx.unique_bytes(buf.len()), 4096);
    }

    #[test]
    fn all_distinct_chunks_stay_distinct() {
        let mut buf = vec![0u8; 4 * 16];
        for (i, chunk) in buf.chunks_mut(16).enumerate() {
            chunk[0] = i as u8;
        }
        let idx = build(&buf, 16);
        assert_eq!(idx.unique_count(), 4);
        assert_eq!(idx.unique_bytes(buf.len()), 64);
    }

    #[test]
    fn first_occurrence_is_recorded() {
        // Layout: A B A B A — uniques are A(idx 0, ×3) and B(idx 1, ×2).
        let mut buf = Vec::new();
        for i in 0..5 {
            buf.extend_from_slice(&[if i % 2 == 0 { 1u8 } else { 2 }; 8]);
        }
        let idx = build(&buf, 8);
        assert_eq!(idx.unique_count(), 2);
        let a = idx.unique[&idx.in_order[0]];
        let b = idx.unique[&idx.in_order[1]];
        assert_eq!((a.first_index, a.occurrences), (0, 3));
        assert_eq!((b.first_index, b.occurrences), (1, 2));
    }

    #[test]
    fn chunk_bytes_returns_canonical_slice() {
        let mut buf = vec![5u8; 16];
        buf.extend_from_slice(&[7u8; 16]);
        let idx = build(&buf, 16);
        let fp_b = idx.in_order[1];
        assert_eq!(idx.chunk_bytes(&buf, &fp_b).unwrap(), &[7u8; 16]);
        assert!(idx
            .chunk_bytes(&buf, &replidedup_hash::Fingerprint::ZERO)
            .is_none());
    }

    #[test]
    fn tail_chunk_counts_true_length() {
        let buf = vec![3u8; 20]; // chunks of 16: one full, one 4-byte tail
        let idx = build(&buf, 16);
        assert_eq!(idx.chunk_count(), 2);
        assert_eq!(
            idx.unique_count(),
            2,
            "tail content differs in length, so in hash"
        );
        assert_eq!(idx.unique_bytes(20), 20);
        assert_eq!(idx.chunk_range(1), 16..20);
    }

    #[test]
    fn empty_buffer() {
        let idx = build(&[], 4096);
        assert_eq!(idx.chunk_count(), 0);
        assert_eq!(idx.unique_count(), 0);
        assert_eq!(idx.unique_bytes(0), 0);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let buf: Vec<u8> = (0..64 * 1024u32).map(|i| (i / 4096) as u8 % 4).collect();
        let fixed = FixedChunker::new(4096);
        let seq = LocalIndex::build(&Sha1ChunkHasher, &buf, &fixed, false);
        let par = LocalIndex::build(&Sha1ChunkHasher, &buf, &fixed, true);
        assert_eq!(seq.in_order, par.in_order);
        assert_eq!(seq.unique_count(), par.unique_count());
    }

    #[test]
    fn variable_length_chunks_index_by_range() {
        // A gear-chunked buffer with a repeated region: the index must
        // track true per-chunk geometry, and `unique_bytes` must sum the
        // variable lengths, not a stride.
        let mut buf: Vec<u8> = (0..40_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
            .collect();
        let len = buf.len();
        buf.extend_from_within(..len); // exact duplicate half
        let chunker = GearChunker::new(GearParams {
            min_size: 128,
            avg_size: 512,
            max_size: 4096,
        });
        let idx = LocalIndex::build(&Sha1ChunkHasher, &buf, &chunker, false);
        assert_eq!(idx.ranges.len(), idx.in_order.len());
        assert_eq!(idx.chunk_lens().len(), idx.chunk_count());
        let summed: u64 = idx.chunk_lens().iter().map(|&l| l as u64).sum();
        assert_eq!(summed, buf.len() as u64, "ranges tile the buffer");
        assert!(
            idx.unique_count() < idx.chunk_count(),
            "duplicate half must dedup"
        );
        assert!(idx.unique_bytes(buf.len()) < buf.len() as u64);
        for i in 0..idx.chunk_count() as u32 {
            let r = idx.chunk_range(i);
            assert_eq!(r.len(), idx.chunk_lens()[i as usize] as usize);
        }
    }
}
