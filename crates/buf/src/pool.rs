//! A small pooled-buffer allocator for receive-side and reassembly
//! buffers.
//!
//! The dump/restore pipeline needs a handful of large scratch vectors per
//! run — the RMA window backing store, the restore reassembly buffer,
//! legacy staging buffers. Allocating them fresh every generation
//! round-trips the system allocator with multi-megabyte requests; the pool
//! keeps returned buffers on a shelf and hands them back out. Buffers that
//! get *frozen* into long-lived [`bytes::Bytes`] (a committed window, a
//! restored image) simply never come back — the pool is a recycler, not an
//! owner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum number of buffers kept on the shelf; beyond that, returns are
/// dropped to the allocator. Dump/restore uses a few buffers per rank, so
/// a small shelf already captures all the reuse there is.
const MAX_SHELVED: usize = 64;

/// Counters describing how well the pool is doing its job. Reported in
/// `BENCH_*.json` as the allocation metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// `take` calls satisfied from the shelf (an allocation avoided).
    pub hits: u64,
    /// `take` calls that had to allocate fresh.
    pub misses: u64,
    /// Buffers handed back via `put_back`.
    pub returned: u64,
    /// Total capacity (bytes) served from the shelf instead of the
    /// allocator.
    pub bytes_reused: u64,
}

/// A shelf of reusable `Vec<u8>` buffers. Thread-safe; one global instance
/// ([`global_pool`]) is shared by every rank in the in-process runtime.
#[derive(Debug, Default)]
pub struct BufferPool {
    shelf: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returned: AtomicU64,
    bytes_reused: AtomicU64,
}

impl BufferPool {
    /// Fresh, empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer with at least `capacity` bytes of capacity.
    /// Best-fit over the shelf; allocates fresh on a miss.
    pub fn take(&self, capacity: usize) -> Vec<u8> {
        let reused = {
            let mut shelf = self.shelf.lock().unwrap();
            // Best fit: the smallest shelved buffer that is big enough,
            // so one huge buffer is not burned on a tiny request.
            let best = shelf
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= capacity)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            best.map(|i| shelf.swap_remove(i))
        };
        match reused {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "shelved buffers are stored cleared");
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_reused
                    .fetch_add(buf.capacity() as u64, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return a buffer to the shelf. Contents are discarded (the buffer is
    /// cleared); zero-capacity buffers and overflow beyond the shelf limit
    /// go back to the allocator.
    pub fn put_back(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        self.returned.fetch_add(1, Ordering::Relaxed);
        let mut shelf = self.shelf.lock().unwrap();
        if shelf.len() < MAX_SHELVED {
            shelf.push(buf);
        }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
            bytes_reused: self.bytes_reused.load(Ordering::Relaxed),
        }
    }

    /// Reset counters (the shelf itself is kept). The benchmark harness
    /// resets between scenarios so each reports its own reuse.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.returned.store(0, Ordering::Relaxed);
        self.bytes_reused.store(0, Ordering::Relaxed);
    }
}

/// The process-wide pool used by the pipeline's scratch allocations.
pub fn global_pool() -> &'static BufferPool {
    static POOL: OnceLock<BufferPool> = OnceLock::new();
    POOL.get_or_init(BufferPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_miss_then_hit() {
        let pool = BufferPool::new();
        let buf = pool.take(4096);
        assert!(buf.capacity() >= 4096);
        assert_eq!(pool.stats().misses, 1);
        pool.put_back(buf);
        let again = pool.take(1024);
        assert!(again.capacity() >= 4096, "best-fit reuses the big buffer");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returned), (1, 1, 1));
        assert!(s.bytes_reused >= 4096);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let pool = BufferPool::new();
        pool.put_back(Vec::with_capacity(100));
        pool.put_back(Vec::with_capacity(10_000));
        pool.put_back(Vec::with_capacity(1000));
        let buf = pool.take(500);
        assert!(buf.capacity() >= 500 && buf.capacity() < 10_000);
    }

    #[test]
    fn too_small_shelf_entries_do_not_satisfy() {
        let pool = BufferPool::new();
        pool.put_back(Vec::with_capacity(16));
        let buf = pool.take(1 << 20);
        assert!(buf.capacity() >= 1 << 20);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn returned_buffers_come_back_cleared() {
        let pool = BufferPool::new();
        let mut buf = pool.take(64);
        buf.extend_from_slice(b"dirty");
        pool.put_back(buf);
        let buf = pool.take(8);
        assert!(buf.is_empty());
    }

    #[test]
    fn zero_capacity_returns_are_dropped() {
        let pool = BufferPool::new();
        pool.put_back(Vec::new());
        assert_eq!(pool.stats().returned, 0);
    }

    #[test]
    fn shelf_is_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_SHELVED + 10) {
            pool.put_back(Vec::with_capacity(8));
        }
        assert_eq!(pool.shelf.lock().unwrap().len(), MAX_SHELVED);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global_pool() as *const BufferPool;
        let b = global_pool() as *const BufferPool;
        assert_eq!(a, b);
    }
}
