//! The [`Chunk`] payload type: a reference-counted immutable byte buffer
//! that the dump/restore pipeline threads end to end. Zero-copy by
//! construction — every conversion that *does* memcpy is explicit about it
//! and records the bytes via [`crate::record_copy`].

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};

use bytes::Bytes;

/// An immutable, reference-counted payload.
///
/// `Chunk` is the unit the hot path moves: a window of the application
/// buffer, a record body on the exchange wire, a stored replica. Cloning
/// and [slicing](Chunk::slice) share the backing allocation, so the chunk
/// a writer slices out of its dump buffer is the *same* allocation the
/// storage node ends up holding.
///
/// Zero-copy constructors: `From<Bytes>`, `From<Vec<u8>>`,
/// [`Chunk::slice`]. Copying constructors (recorded against the
/// `bytes_copied` accounting): [`Chunk::copy_from_slice`], `From<&[u8]>`,
/// `From<&Vec<u8>>`, and `From<Chunk> for Vec<u8>` on the way out.
#[derive(Clone, Default)]
pub struct Chunk {
    data: Bytes,
}

impl Chunk {
    /// Empty chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `slice` into a fresh allocation. Recorded as a hot-path copy;
    /// prefer the zero-copy `From<Vec<u8>>` / `From<Bytes>` conversions.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        crate::record_copy(slice.len());
        Self {
            data: Bytes::copy_from_slice(slice),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Zero-copy sub-chunk sharing this chunk's allocation. This is how
    /// the chunker carves the application buffer: no bytes move.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        Self {
            data: self.data.slice(range),
        }
    }

    /// Borrow the underlying [`Bytes`].
    pub fn as_bytes(&self) -> &Bytes {
        &self.data
    }

    /// Unwrap into the underlying [`Bytes`] (zero-copy).
    pub fn into_bytes(self) -> Bytes {
        self.data
    }

    /// Whether `self` and `other` are views into the same backing
    /// allocation — the invariant the zero-copy tests assert end to end.
    pub fn shares_allocation_with(&self, other: &Chunk) -> bool {
        self.data.shares_allocation_with(&other.data)
    }
}

impl From<Bytes> for Chunk {
    /// Zero-copy.
    fn from(data: Bytes) -> Self {
        Self { data }
    }
}

impl From<Chunk> for Bytes {
    /// Zero-copy.
    fn from(c: Chunk) -> Self {
        c.data
    }
}

impl From<Vec<u8>> for Chunk {
    /// Zero-copy: the vector becomes the backing allocation.
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Bytes::from(v),
        }
    }
}

impl From<&[u8]> for Chunk {
    /// Copies (recorded); the borrowed bytes must be duplicated to get an
    /// owned refcounted buffer.
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&Vec<u8>> for Chunk {
    /// Copies (recorded). Pass the `Vec` by value for the zero-copy path.
    fn from(v: &Vec<u8>) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Chunk {
    /// Copies (recorded); convenience for array literals in tests and
    /// examples.
    fn from(a: &[u8; N]) -> Self {
        Self::copy_from_slice(a)
    }
}

impl From<Chunk> for Vec<u8> {
    /// Copies (recorded): materialises an owned, uniquely-held vector for
    /// callers leaving the zero-copy world.
    fn from(c: Chunk) -> Self {
        crate::record_copy(c.len());
        c.data.to_vec()
    }
}

impl Deref for Chunk {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Chunk {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Chunk {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl Hash for Chunk {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialEq for Chunk {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Chunk {}

impl PartialEq<[u8]> for Chunk {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == *other
    }
}

impl PartialEq<&[u8]> for Chunk {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data == **other
    }
}

impl PartialEq<Vec<u8>> for Chunk {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data == *other
    }
}

impl PartialEq<Bytes> for Chunk {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == *other
    }
}

impl PartialEq<Chunk> for Vec<u8> {
    fn eq(&self, other: &Chunk) -> bool {
        *self == other.data
    }
}

impl PartialEq<Chunk> for [u8] {
    fn eq(&self, other: &Chunk) -> bool {
        *self == other.data
    }
}

impl fmt::Debug for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chunk({} B) ", self.len())?;
        self.data.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_slice_are_zero_copy() {
        let v = vec![1u8; 4096];
        let p = v.as_ptr();
        let whole = Chunk::from(v);
        assert_eq!(whole.as_ptr(), p);
        let part = whole.slice(1024..2048);
        assert_eq!(part.as_ptr(), unsafe { p.add(1024) });
        assert!(part.shares_allocation_with(&whole));
        assert_eq!(part.len(), 1024);
    }

    #[test]
    fn copying_conversions_are_recorded() {
        let before = crate::thread_bytes_copied();
        let c = Chunk::from(&b"0123456789"[..]);
        assert_eq!(crate::thread_bytes_copied() - before, 10);
        let v: Vec<u8> = c.into();
        assert_eq!(v, b"0123456789");
        assert_eq!(crate::thread_bytes_copied() - before, 20);
    }

    #[test]
    fn zero_copy_conversions_are_not_recorded() {
        let before = crate::thread_bytes_copied();
        let c = Chunk::from(vec![9u8; 512]);
        let b: Bytes = c.clone().into();
        let back = Chunk::from(b);
        let _sub = back.slice(..100);
        assert_eq!(crate::thread_bytes_copied(), before);
    }

    #[test]
    fn equality_and_ordering_with_plain_buffers() {
        let c = Chunk::from(vec![1, 2, 3]);
        assert_eq!(c, vec![1u8, 2, 3]);
        assert_eq!(vec![1u8, 2, 3], c);
        assert_eq!(c, &[1u8, 2, 3][..]);
        assert_eq!(c, Chunk::copy_from_slice(&[1, 2, 3]));
        assert_ne!(c, Chunk::new());
    }

    #[test]
    fn debug_is_length_prefixed() {
        let c = Chunk::from(vec![b'a', b'b']);
        assert_eq!(format!("{c:?}"), "Chunk(2 B) b\"ab\"");
    }
}
