//! Zero-copy payload plumbing for the replidedup hot path.
//!
//! The paper's argument is about *bytes moved*: `coll-dedup` wins because
//! the dump phase ships fewer bytes. A reproduction that memcpys every
//! payload three times between chunking and storage would measure its own
//! allocator, not the algorithm. This crate provides the three pieces the
//! hot path needs to avoid that:
//!
//! * [`Chunk`] — a reference-counted, immutable payload. Slicing a chunk
//!   out of the application buffer shares the allocation; the same bytes
//!   flow through `Comm` sends, window RMA and storage puts without a
//!   per-hop `Vec<u8>` clone.
//! * [`BufferPool`] — a small free-list for receive-side and reassembly
//!   buffers, so repeated dumps/restores recycle their scratch space
//!   instead of round-tripping the system allocator.
//! * copy accounting ([`record_copy`], [`thread_bytes_copied`],
//!   [`process_bytes_copied`]) — every *deliberate* memcpy on the hot path
//!   is recorded, which is what `repro --bench` reports as
//!   `bytes_copied` and the tracer exports as the `alloc_bytes_copied`
//!   counter. If a refactor reintroduces a staging copy, the benchmark
//!   sees it.

mod chunk;
mod pool;

pub use chunk::Chunk;
pub use pool::{global_pool, BufferPool, PoolStats};

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide total of recorded copy bytes (all threads).
static PROCESS_COPIED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread total, so each rank (one thread in the in-process
    /// runtime) can attribute its own copies to its trace stream.
    static THREAD_COPIED: Cell<u64> = const { Cell::new(0) };
}

/// Record `n` bytes memcpy'd on the hot path. Call this at every site that
/// deliberately copies payload bytes (staging buffers, `Vec<u8>` shims,
/// scatter-gather coalescing) — *not* for modelled transfers like window
/// RMA, which are the network traffic the paper counts separately.
pub fn record_copy(n: usize) {
    let n = n as u64;
    PROCESS_COPIED.fetch_add(n, Ordering::Relaxed);
    THREAD_COPIED.with(|c| c.set(c.get() + n));
}

/// Total bytes recorded by [`record_copy`] on the *calling thread* since
/// it started. Ranks snapshot this around a pipeline run and emit the
/// delta as the `alloc_bytes_copied` trace counter.
pub fn thread_bytes_copied() -> u64 {
    THREAD_COPIED.with(Cell::get)
}

/// Total bytes recorded by [`record_copy`] process-wide (all ranks).
pub fn process_bytes_copied() -> u64 {
    PROCESS_COPIED.load(Ordering::Relaxed)
}

/// Reset the process-wide counter (the per-thread counters are monotonic;
/// callers measure deltas). The benchmark harness resets between scenario
/// runs so each run reports its own copies.
pub fn reset_process_bytes_copied() {
    PROCESS_COPIED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_accounting_is_per_thread_and_process_wide() {
        let t0 = thread_bytes_copied();
        let p0 = process_bytes_copied();
        record_copy(100);
        record_copy(28);
        assert_eq!(thread_bytes_copied() - t0, 128);
        assert!(process_bytes_copied() - p0 >= 128);
        let other = std::thread::scope(|s| {
            s.spawn(|| {
                let t = thread_bytes_copied();
                record_copy(7);
                thread_bytes_copied() - t
            })
            .join()
            .unwrap()
        });
        assert_eq!(other, 7);
        // The sibling thread's copies never leak into this thread's view.
        assert_eq!(thread_bytes_copied() - t0, 128);
    }
}
