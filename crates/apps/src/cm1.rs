//! CM1-like atmospheric mini-model.
//!
//! CM1 is "a three-dimensional, non-hydrostatic, nonlinear, time-dependent
//! numerical model suitable for idealized studies of atmospheric
//! phenomena", run by the paper on a 3D hurricane (Bryan & Rotunno) with a
//! 200×200 subdomain per process. This reproduction keeps the properties
//! the evaluation depends on:
//!
//! * a distributed stencil computation over a decomposed spatial domain
//!   with halo exchange each time step,
//! * a localized phenomenon (a compactly supported vortex) over a uniform
//!   ambient atmosphere — subdomains far from the vortex remain
//!   bit-identical across ranks (the natural redundancy), and a growing
//!   fraction of the field changes between checkpoints (the paper notes
//!   ~500 MB of ~800 MB "constantly changed"),
//! * static fields (`u`, `v`, base pressure) alongside evolving ones
//!   (`theta`, perturbation pressure).
//!
//! The dynamics are upwind advection plus diffusion of potential
//! temperature in a prescribed vortex flow — deliberately simple numerics,
//! faithful memory behaviour.

use replidedup_ckpt::{RegionId, TrackedHeap};
use replidedup_mpi::{Comm, Tag};

use crate::util::{bytes_to_f64s, f64s_to_bytes};

const TAG_ROW_UP: Tag = 0x434D_0001;
const TAG_ROW_DOWN: Tag = 0x434D_0002;

/// CM1-like model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cm1Config {
    /// Global grid extent in x (columns, periodic).
    pub nx: usize,
    /// Rows per rank (global extent = `ny_per_rank * size`).
    pub ny_per_rank: usize,
    /// Time step.
    pub dt: f64,
    /// Grid spacing.
    pub dx: f64,
    /// Diffusivity.
    pub viscosity: f64,
    /// Peak tangential wind of the vortex.
    pub vortex_strength: f64,
    /// Vortex core radius (in grid cells); the flow is exactly zero beyond
    /// `2 × radius`, which is what keeps far subdomains bit-identical.
    pub vortex_radius: f64,
    /// Ambient potential temperature.
    pub theta0: f64,
    /// Rank-private runtime state as a fraction of field data (see
    /// [`crate::util::rank_private_bytes`]).
    pub private_factor: f64,
    /// `0` = single central vortex. `G > 0` = one identical vortex cell
    /// per group of `G` consecutive ranks (periodic convective system);
    /// see [`Cm1::new`].
    pub cell_group: u32,
    /// Extra warm-core amplitude applied to the central cell only (the
    /// globally unique "eye"); `0.0` disables it.
    pub core_boost: f64,
}

impl Default for Cm1Config {
    fn default() -> Self {
        Self {
            nx: 48,
            ny_per_rank: 12,
            dt: 0.1,
            dx: 1.0,
            viscosity: 0.05,
            vortex_strength: 2.0,
            vortex_radius: 6.0,
            theta0: 300.0,
            private_factor: 0.05,
            cell_group: 0,
            core_boost: 0.0,
        }
    }
}

/// Heap regions holding a checkpointable CM1 state.
#[derive(Debug, Clone, Copy)]
pub struct Cm1Regions {
    /// Rank-private runtime state (filled once at allocation).
    #[allow(dead_code)]
    private: RegionId,
    u: RegionId,
    v: RegionId,
    theta: RegionId,
    pressure: RegionId,
    meta: RegionId,
}

/// Per-rank CM1-like model state (row decomposition: rank r owns global
/// rows `[r*ny, (r+1)*ny)`).
#[derive(Debug, Clone)]
pub struct Cm1 {
    cfg: Cm1Config,
    rank: u32,
    size: u32,
    ny: usize,
    /// Static zonal wind, `ny × nx`.
    u: Vec<f64>,
    /// Static meridional wind, `ny × nx`.
    v: Vec<f64>,
    /// Evolving potential temperature, `ny × nx`.
    theta: Vec<f64>,
    /// Diagnostic perturbation pressure, `ny × nx`.
    pressure: Vec<f64>,
    step_count: u64,
}

impl Cm1 {
    /// Initialize the vortex field.
    ///
    /// With `cell_group == 0` (default): one hurricane-like vortex centered
    /// in the global domain.
    ///
    /// With `cell_group == G > 0`: a periodic *convective system* — one
    /// identical vortex cell per group of `G` consecutive ranks, at the
    /// same relative position in every group, plus a warm "eye" boost in
    /// the central group only. This is the memory-image profile the
    /// paper's CM1 hurricane exhibits under 2D decomposition: every group
    /// has partially perturbed subdomains whose content *repeats* across
    /// groups (high cross-rank duplication of changing data), while only
    /// the eye region is globally unique. A 1D row decomposition of a
    /// single disc cannot produce that profile at page granularity, so the
    /// periodic-cell mode exists to recover it (see DESIGN.md §2).
    pub fn new(rank: u32, size: u32, cfg: Cm1Config) -> Self {
        assert!(
            cfg.nx > 0 && cfg.ny_per_rank > 0,
            "grid extents must be positive"
        );
        let ny = cfg.ny_per_rank;
        let n = ny * cfg.nx;
        let gny = ny * size as usize;
        let cutoff = 2.0 * cfg.vortex_radius;
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut theta = vec![cfg.theta0; n];
        // Vortex cell centers: one global center, or one per rank group.
        let cx = cfg.nx as f64 / 2.0;
        let centers: Vec<f64> = if cfg.cell_group == 0 {
            vec![gny as f64 / 2.0]
        } else {
            let group_rows = (cfg.cell_group as usize * ny) as f64;
            let groups = (gny as f64 / group_rows).ceil() as usize;
            (0..groups)
                .map(|g| g as f64 * group_rows + group_rows / 2.0)
                .collect()
        };
        // The "eye": extra warmth in the central cell only (globally
        // unique content; everything else repeats across groups).
        let eye_center = centers[centers.len() / 2];
        let eye_cutoff = cfg.vortex_radius / 2.0;
        for iy in 0..ny {
            let gy = (rank as usize * ny + iy) as f64;
            for ix in 0..cfg.nx {
                let idx = iy * cfg.nx + ix;
                let dx = ix as f64 - cx;
                for &cy in &centers {
                    let dy = gy - cy;
                    let r = (dx * dx + dy * dy).sqrt();
                    if r < cutoff && r > 1e-9 {
                        // Rankine-like tangential wind, tapered smoothly to
                        // exactly zero at the cutoff so far cells stay
                        // bit-identical ambient.
                        let taper = {
                            let t = 1.0 - (r / cutoff) * (r / cutoff);
                            t * t
                        };
                        let s = cfg.vortex_strength
                            * (r / cfg.vortex_radius)
                            * (-((r / cfg.vortex_radius) * (r / cfg.vortex_radius)) / 2.0).exp()
                            * taper;
                        u[idx] += -s * dy / r;
                        v[idx] += s * dx / r;
                        // Warm core, same smooth compact support.
                        theta[idx] += 5.0 * (-(r / cfg.vortex_radius).powi(2)).exp() * taper;
                    }
                }
                if cfg.core_boost != 0.0 {
                    let dy = gy - eye_center;
                    let r = (dx * dx + dy * dy).sqrt();
                    if r < eye_cutoff {
                        let t = 1.0 - (r / eye_cutoff) * (r / eye_cutoff);
                        theta[idx] += cfg.core_boost * t * t;
                    }
                }
            }
        }
        let mut app = Self {
            cfg,
            rank,
            size,
            ny,
            u,
            v,
            theta,
            pressure: vec![0.0; n],
            step_count: 0,
        };
        app.diagnose_pressure();
        app
    }

    /// Completed time steps.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Bytes of model state (checkpoint payload size).
    pub fn memory_bytes(&self) -> usize {
        4 * self.theta.len() * 8
    }

    fn diagnose_pressure(&mut self) {
        // Toy diagnostic: perturbation pressure ∝ -(θ - θ0).
        for (p, t) in self.pressure.iter_mut().zip(&self.theta) {
            *p = -0.5 * (t - self.cfg.theta0);
        }
    }

    /// Exchange boundary rows of `theta` with the neighbor ranks; returns
    /// `(below_row, above_row)` (ambient rows at the global edges).
    fn halo_rows(&self, comm: &mut Comm) -> (Vec<f64>, Vec<f64>) {
        let nx = self.cfg.nx;
        let below = self.rank.checked_sub(1);
        let above = (self.rank + 1 < self.size).then(|| self.rank + 1);
        if let Some(nb) = below {
            comm.send_val(nb, TAG_ROW_DOWN, &self.theta[..nx].to_vec());
        }
        if let Some(na) = above {
            comm.send_val(na, TAG_ROW_UP, &self.theta[(self.ny - 1) * nx..].to_vec());
        }
        let ambient = vec![self.cfg.theta0; nx];
        let below_row = match below {
            Some(nb) => comm.recv_val(nb, TAG_ROW_UP),
            None => ambient.clone(),
        };
        let above_row = match above {
            Some(na) => comm.recv_val(na, TAG_ROW_DOWN),
            None => ambient,
        };
        (below_row, above_row)
    }

    /// Advance one time step (collective: halo exchange with neighbors).
    pub fn step(&mut self, comm: &mut Comm) {
        let nx = self.cfg.nx;
        let (below, above) = self.halo_rows(comm);
        let at = |t: &[f64], iy: i64, ix: usize| -> f64 {
            // Periodic in x (handled by caller); clamped rows via halos.
            if iy < 0 {
                below[ix]
            } else if iy >= self.ny as i64 {
                above[ix]
            } else {
                t[iy as usize * nx + ix]
            }
        };
        let old = self.theta.clone();
        let (dt, dx, nu) = (self.cfg.dt, self.cfg.dx, self.cfg.viscosity);
        for iy in 0..self.ny as i64 {
            for ix in 0..nx {
                let idx = iy as usize * nx + ix;
                let (uu, vv) = (self.u[idx], self.v[idx]);
                let xm = (ix + nx - 1) % nx;
                let xp = (ix + 1) % nx;
                let c = at(&old, iy, ix);
                // Upwind advection.
                let dtdx = if uu >= 0.0 {
                    c - at(&old, iy, xm)
                } else {
                    at(&old, iy, xp) - c
                } / dx;
                let dtdy = if vv >= 0.0 {
                    c - at(&old, iy - 1, ix)
                } else {
                    at(&old, iy + 1, ix) - c
                } / dx;
                // Diffusion.
                let lap = (at(&old, iy, xm)
                    + at(&old, iy, xp)
                    + at(&old, iy - 1, ix)
                    + at(&old, iy + 1, ix)
                    - 4.0 * c)
                    / (dx * dx);
                self.theta[idx] = c + dt * (-(uu * dtdx + vv * dtdy) + nu * lap);
            }
        }
        self.diagnose_pressure();
        self.step_count += 1;
    }

    /// Run `steps` time steps.
    pub fn run(&mut self, comm: &mut Comm, steps: u64) {
        for _ in 0..steps {
            self.step(comm);
        }
    }

    /// Global heat anomaly Σ(θ - θ0) — a conserved-ish diagnostic
    /// (advection conserves it exactly; diffusion with clamped boundaries
    /// leaks only once the anomaly reaches the domain edge).
    pub fn heat_anomaly(&self, comm: &mut Comm) -> f64 {
        let local: f64 = self.theta.iter().map(|t| t - self.cfg.theta0).sum();
        comm.allreduce(local, |a, b| a + b)
    }

    /// Borrow the temperature field (tests/diagnostics).
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Fraction of this rank's cells still at exactly the ambient state
    /// (bit-identical across ranks — the dedupable share).
    pub fn ambient_fraction(&self) -> f64 {
        let ambient = self.theta.iter().filter(|&&t| t == self.cfg.theta0).count();
        ambient as f64 / self.theta.len() as f64
    }

    // ---- checkpoint integration ----------------------------------------

    /// Allocate heap regions sized for this model.
    pub fn alloc_regions(&self, heap: &mut TrackedHeap) -> Cm1Regions {
        let n = self.theta.len() * 8;
        let private_len = (4.0 * n as f64 * self.cfg.private_factor) as usize;
        let private = heap.alloc(private_len);
        heap.write(
            private,
            0,
            &crate::util::rank_private_bytes(self.rank, private_len),
        );
        Cm1Regions {
            private,
            u: heap.alloc(n),
            v: heap.alloc(n),
            theta: heap.alloc(n),
            pressure: heap.alloc(n),
            meta: heap.alloc(8),
        }
    }

    /// Write model state into the heap (call right before checkpoint).
    pub fn sync_to_heap(&self, heap: &mut TrackedHeap, regions: &Cm1Regions) {
        heap.write(regions.u, 0, &f64s_to_bytes(&self.u));
        heap.write(regions.v, 0, &f64s_to_bytes(&self.v));
        heap.write(regions.theta, 0, &f64s_to_bytes(&self.theta));
        heap.write(regions.pressure, 0, &f64s_to_bytes(&self.pressure));
        heap.write(regions.meta, 0, &self.step_count.to_le_bytes());
    }

    /// Rebuild model state from a restored heap.
    pub fn load_from_heap(
        heap: &TrackedHeap,
        regions: &Cm1Regions,
        rank: u32,
        size: u32,
        cfg: Cm1Config,
    ) -> Self {
        let mut app = Self::new(rank, size, cfg);
        app.u = bytes_to_f64s(heap.read(regions.u));
        app.v = bytes_to_f64s(heap.read(regions.v));
        app.theta = bytes_to_f64s(heap.read(regions.theta));
        app.pressure = bytes_to_f64s(heap.read(regions.pressure));
        app.step_count =
            u64::from_le_bytes(heap.read(regions.meta)[..8].try_into().expect("8 bytes"));
        app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replidedup_mpi::WorldConfig;

    fn small() -> Cm1Config {
        Cm1Config {
            nx: 24,
            ny_per_rank: 8,
            vortex_radius: 3.0,
            ..Default::default()
        }
    }

    #[test]
    fn vortex_sits_in_global_center() {
        // 4 ranks × 8 rows: center row 16 → ranks 1 and 2 carry the vortex.
        let apps: Vec<Cm1> = (0..4).map(|r| Cm1::new(r, 4, small())).collect();
        assert!(apps[1].ambient_fraction() < 1.0);
        assert!(apps[2].ambient_fraction() < 1.0);
        assert_eq!(apps[0].ambient_fraction(), 1.0, "far rank fully ambient");
        assert_eq!(apps[3].ambient_fraction(), 1.0);
    }

    #[test]
    fn far_ranks_stay_bit_identical_under_stepping() {
        let out = WorldConfig::default()
            .launch(6, |comm| {
                let mut app = Cm1::new(comm.rank(), comm.size(), small());
                app.run(comm, 5);
                app.theta().to_vec()
            })
            .expect_all();
        // Ranks 0 and 5 are far from the center (48 rows, vortex support
        // rows 18..30, spreading ≤ one row per step): fully ambient.
        assert_eq!(out.results[0], out.results[5]);
        assert!(out.results[0].iter().all(|&t| t == 300.0));
        // Center ranks have structure.
        assert!(out.results[2].iter().any(|&t| t != 300.0));
    }

    #[test]
    fn heat_anomaly_is_conserved_early() {
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let mut app = Cm1::new(comm.rank(), comm.size(), small());
                let before = app.heat_anomaly(comm);
                app.run(comm, 5);
                let after = app.heat_anomaly(comm);
                (before, after)
            })
            .expect_all();
        let (before, after) = out.results[0];
        assert!(before > 0.0, "warm core present");
        let rel = ((after - before) / before).abs();
        assert!(rel < 0.05, "anomaly drifted {rel} in 5 steps");
    }

    #[test]
    fn stepping_changes_the_field_near_the_vortex() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let mut app = Cm1::new(comm.rank(), comm.size(), small());
                let t0 = app.theta().to_vec();
                app.step(comm);
                let changed = app.theta().iter().zip(&t0).filter(|(a, b)| a != b).count();
                (comm.rank(), changed)
            })
            .expect_all();
        // With 2 ranks the vortex straddles both.
        for (_, changed) in out.results {
            assert!(changed > 0, "time stepping must change the field");
        }
    }

    #[test]
    fn single_rank_matches_halo_free_reference() {
        // With one rank, halos are ambient — the global boundary condition.
        let out = WorldConfig::default()
            .launch(1, |comm| {
                let mut app = Cm1::new(0, 1, small());
                app.run(comm, 3);
                app.theta().to_vec()
            })
            .expect_all();
        assert!(out.results[0].iter().all(|t| t.is_finite()));
    }

    #[test]
    fn decomposition_invariance() {
        // 1 rank with 32 rows must equal 4 ranks with 8 rows each.
        let whole = WorldConfig::default()
            .launch(1, |comm| {
                let cfg = Cm1Config {
                    ny_per_rank: 32,
                    ..small()
                };
                let mut app = Cm1::new(0, 1, cfg);
                app.run(comm, 8);
                app.theta().to_vec()
            })
            .expect_all();
        let split = WorldConfig::default()
            .launch(4, |comm| {
                let mut app = Cm1::new(comm.rank(), comm.size(), small());
                app.run(comm, 8);
                app.theta().to_vec()
            })
            .expect_all();
        let stitched: Vec<f64> = split.results.into_iter().flatten().collect();
        assert_eq!(
            whole.results[0], stitched,
            "domain decomposition must not change physics"
        );
    }

    #[test]
    fn heap_roundtrip_resumes_exactly() {
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let mut app = Cm1::new(comm.rank(), comm.size(), small());
                app.run(comm, 4);
                let mut heap = TrackedHeap::new(4096);
                let regions = app.alloc_regions(&mut heap);
                app.sync_to_heap(&mut heap, &regions);
                app.run(comm, 4);
                let mut replay =
                    Cm1::load_from_heap(&heap, &regions, comm.rank(), comm.size(), small());
                assert_eq!(replay.steps(), 4);
                replay.run(comm, 4);
                (app.theta().to_vec(), replay.theta().to_vec())
            })
            .expect_all();
        for (a, b) in out.results {
            assert_eq!(a, b, "bit-identical resume");
        }
    }
}
