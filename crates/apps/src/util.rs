//! Byte-level helpers for checkpointing numeric state.
//!
//! Application state lives in typed vectors; checkpoints capture raw
//! memory. These helpers convert both ways with explicit little-endian
//! layout so snapshots are deterministic across runs (bit-identical floats
//! on identical ranks are exactly what makes the cross-rank deduplication
//! of the paper work).

/// Serialize an `f64` slice to little-endian bytes.
pub fn f64s_to_bytes(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parse little-endian bytes into `f64`s.
///
/// # Panics
/// If the length is not a multiple of 8.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(
        bytes.len() % 8,
        0,
        "f64 byte stream length must be a multiple of 8"
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Serialize an `i32` slice to little-endian bytes.
pub fn i32s_to_bytes(vals: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parse little-endian bytes into `i32`s.
///
/// # Panics
/// If the length is not a multiple of 4.
pub fn bytes_to_i32s(bytes: &[u8]) -> Vec<i32> {
    assert_eq!(
        bytes.len() % 4,
        0,
        "i32 byte stream length must be a multiple of 4"
    );
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

/// Deterministic rank-private filler modeling per-process runtime state.
///
/// A transparent checkpoint captures more than the solver arrays: MPI
/// communicator structures, rank-indexed lookup tables, stacks, network
/// buffers — content that differs on every rank and never deduplicates
/// across processes. The evaluation apps include a region of this
/// material (sized by their `private_factor`) so the global dedup ratio
/// reflects what the paper measured on full process images rather than
/// bare solver arrays.
pub fn rank_private_bytes(rank: u32, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut state = 0xC0FF_EE00_0000_0000 ^ (u64::from(rank) << 16) ^ 0x9e37_79b9;
    for word in out.chunks_mut(8) {
        // splitmix64
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let b = z.to_le_bytes();
        word.copy_from_slice(&b[..word.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    fn i32_roundtrip() {
        let v = vec![0, -1, i32::MAX, i32::MIN, 42];
        assert_eq!(bytes_to_i32s(&i32s_to_bytes(&v)), v);
    }

    #[test]
    fn empty_roundtrips() {
        assert!(bytes_to_f64s(&f64s_to_bytes(&[])).is_empty());
        assert!(bytes_to_i32s(&i32s_to_bytes(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn misaligned_f64_panics() {
        bytes_to_f64s(&[1, 2, 3]);
    }

    #[test]
    fn rank_private_is_deterministic_and_rank_distinct() {
        assert_eq!(rank_private_bytes(3, 100), rank_private_bytes(3, 100));
        assert_ne!(rank_private_bytes(3, 100), rank_private_bytes(4, 100));
        assert_eq!(rank_private_bytes(0, 0), Vec::<u8>::new());
        assert_eq!(rank_private_bytes(1, 13).len(), 13);
    }

    #[test]
    fn identical_values_identical_bytes() {
        // The property cross-rank dedup relies on.
        assert_eq!(
            f64s_to_bytes(&[1.0 / 3.0; 4]),
            f64s_to_bytes(&[1.0 / 3.0; 4])
        );
    }
}
