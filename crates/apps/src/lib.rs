//! Mini-applications and workloads for the `replidedup` evaluation.
//!
//! The paper motivates and evaluates its collective replication scheme with
//! two real HPC applications running under checkpoint/restart:
//!
//! * [`hpccg`] — the Mantevo conjugate-gradient mini-app (27-point finite
//!   difference matrix, weak scaling),
//! * [`cm1`] — a CM1-like atmospheric stencil model (hurricane vortex over
//!   a uniform ambient state),
//!
//! plus [`synthetic`] — a workload generator with exactly dialed-in
//! redundancy for sweeps and property tests.

pub mod cm1;
pub mod hpccg;
pub mod synthetic;
pub mod util;

pub use cm1::{Cm1, Cm1Config, Cm1Regions};
pub use hpccg::{Hpccg, HpccgConfig, HpccgRegions};
pub use synthetic::SyntheticWorkload;
