//! HPCCG: the Mantevo conjugate-gradient mini-app.
//!
//! "A simple conjugate gradient benchmark code for a 3D chimney domain on
//! an arbitrary number of processes that generates a 27-point finite
//! difference matrix with a user-prescribed sub-block size on each
//! process." (Section V-B) The paper runs a 150³ sub-block per process
//! (~1.5 GB); this reproduction runs the same solver at laptop-scale
//! sub-blocks — the *structure* of the memory image, which is what the
//! deduplication exploits, is size-independent:
//!
//! * the sparse-matrix arrays (`cols`, `vals`, `nnz_per_row`) use local
//!   indexing and are bit-identical on every interior rank,
//! * the CG vectors of interior ranks evolve identically by translation
//!   symmetry (1D decomposition of a homogeneous operator), while boundary
//!   ranks diverge — exactly the "natural distributed redundancy" the
//!   paper measures on HPCCG.
//!
//! The solver is a faithful distributed CG: 27-point operator with halo
//! exchange across the z-decomposition and allreduce-based dot products.

use replidedup_ckpt::{RegionId, TrackedHeap};
use replidedup_mpi::{Comm, Tag};

use crate::util::{bytes_to_f64s, f64s_to_bytes};

const TAG_HALO_UP: Tag = 0x4850_0001;
const TAG_HALO_DOWN: Tag = 0x4850_0002;

/// HPCCG problem configuration (per-rank sub-block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HpccgConfig {
    /// Sub-block extent in x.
    pub nx: usize,
    /// Sub-block extent in y.
    pub ny: usize,
    /// Sub-block extent in z (stacked across ranks).
    pub nz: usize,
    /// Transparent-capture heap slack as a fraction of live solver data.
    ///
    /// AC-FTE's transparent mode snapshots *all* pages the process
    /// allocator mapped — jemalloc arena slack, freed-but-mapped regions,
    /// communication buffers — which are zero/uniform and deduplicate
    /// locally. This is what gives the paper's HPCCG its measured
    /// intra-process redundancy (local-dedup reduces it to 33%); the
    /// solver arrays alone have almost none. Captured here as a
    /// zero-filled region of `slack_factor × live bytes`.
    pub slack_factor: f64,
    /// Rank-private runtime state (MPI structures, stacks, rank-indexed
    /// buffers) as a fraction of live solver data — content a transparent
    /// capture includes that never deduplicates across ranks. See
    /// [`crate::util::rank_private_bytes`].
    pub private_factor: f64,
}

impl Default for HpccgConfig {
    fn default() -> Self {
        // Laptop-scale stand-in for the paper's 150³.
        Self {
            nx: 16,
            ny: 16,
            nz: 16,
            slack_factor: 1.5,
            private_factor: 0.16,
        }
    }
}

/// Heap regions holding a checkpointable HPCCG state.
#[derive(Debug, Clone, Copy)]
pub struct HpccgRegions {
    vals: RegionId,
    /// Zero-filled transparent-capture slack (never written).
    #[allow(dead_code)]
    slack: RegionId,
    /// Rank-private runtime state (filled once at allocation).
    #[allow(dead_code)]
    private: RegionId,
    cols: RegionId,
    x: RegionId,
    b: RegionId,
    r: RegionId,
    p: RegionId,
    meta: RegionId,
}

/// Distributed HPCCG solver state for one rank.
#[derive(Debug, Clone)]
pub struct Hpccg {
    cfg: HpccgConfig,
    rank: u32,
    size: u32,
    nrows: usize,
    plane: usize,
    /// CSR-ish storage: 27 slots per row, unused slots hold col -1.
    cols: Vec<i32>,
    vals: Vec<f64>,
    x: Vec<f64>,
    b: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    rtrans: f64,
    iter: u64,
    started: bool,
}

impl Hpccg {
    /// Build the local sub-block of the 27-point problem. Rank `rank` of
    /// `size` owns z-slab `[rank*nz, (rank+1)*nz)` of the global chimney.
    pub fn new(rank: u32, size: u32, cfg: HpccgConfig) -> Self {
        assert!(
            cfg.nx > 0 && cfg.ny > 0 && cfg.nz > 0,
            "sub-block extents must be positive"
        );
        let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
        let nrows = nx * ny * nz;
        let plane = nx * ny;
        let gz_max = nz * size as usize;
        let mut cols = vec![-1i32; nrows * 27];
        let mut vals = vec![0f64; nrows * 27];
        let mut b = vec![0f64; nrows];
        for iz in 0..nz {
            let gz = rank as usize * nz + iz;
            for iy in 0..ny {
                for ix in 0..nx {
                    let row = ix + iy * nx + iz * plane;
                    let mut slot = 0;
                    let mut nnz = 0u32;
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let (jx, jy) = (ix as i64 + dx, iy as i64 + dy);
                                let jgz = gz as i64 + dz;
                                let in_domain = (0..nx as i64).contains(&jx)
                                    && (0..ny as i64).contains(&jy)
                                    && (0..gz_max as i64).contains(&jgz);
                                if in_domain {
                                    let jz = iz as i64 + dz;
                                    // Local cells use local row indices;
                                    // halo cells (one plane below/above the
                                    // slab) are appended after the rows.
                                    let col = if jz < 0 {
                                        nrows as i64 + jx + jy * nx as i64
                                    } else if jz >= nz as i64 {
                                        (nrows + plane) as i64 + jx + jy * nx as i64
                                    } else {
                                        jx + jy * nx as i64 + jz * plane as i64
                                    };
                                    let diag = dx == 0 && dy == 0 && dz == 0;
                                    cols[row * 27 + slot] = col as i32;
                                    vals[row * 27 + slot] = if diag { 27.0 } else { -1.0 };
                                    slot += 1;
                                    nnz += 1;
                                }
                            }
                        }
                    }
                    // Same RHS as Mantevo HPCCG: 27 - (nnz_in_row - 1),
                    // making x == ones the exact solution.
                    b[row] = 27.0 - f64::from(nnz - 1);
                }
            }
        }
        Self {
            cfg,
            rank,
            size,
            nrows,
            plane,
            cols,
            vals,
            x: vec![0.0; nrows],
            b,
            r: vec![0.0; nrows],
            p: vec![0.0; nrows],
            rtrans: 0.0,
            iter: 0,
            started: false,
        }
    }

    /// Local rows in the sub-block.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// The configuration this solver was built with.
    pub fn config(&self) -> &HpccgConfig {
        &self.cfg
    }

    /// Completed CG iterations.
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    /// Approximate bytes of solver state (the checkpoint payload size).
    pub fn memory_bytes(&self) -> usize {
        self.vals.len() * 8 + self.cols.len() * 4 + 4 * self.nrows * 8
    }

    fn ddot(&self, comm: &mut Comm, a: &[f64], b: &[f64]) -> f64 {
        let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        comm.allreduce(local, |x, y| x + y)
    }

    /// Exchange halo planes of `v` and return the extended vector
    /// `[v, below_plane, above_plane]` (absent neighbors give zero planes,
    /// consistent with domain truncation).
    fn with_halo(&self, comm: &mut Comm, v: &[f64]) -> Vec<f64> {
        let mut ext = Vec::with_capacity(self.nrows + 2 * self.plane);
        ext.extend_from_slice(v);
        ext.resize(self.nrows + 2 * self.plane, 0.0);
        let below = self.rank.checked_sub(1);
        let above = (self.rank + 1 < self.size).then(|| self.rank + 1);
        // Send my boundary planes outward.
        if let Some(nb) = below {
            comm.send_val(nb, TAG_HALO_DOWN, &v[..self.plane].to_vec());
        }
        if let Some(na) = above {
            comm.send_val(na, TAG_HALO_UP, &v[self.nrows - self.plane..].to_vec());
        }
        // Receive neighbor planes inward.
        if let Some(nb) = below {
            let plane: Vec<f64> = comm.recv_val(nb, TAG_HALO_UP);
            ext[self.nrows..self.nrows + self.plane].copy_from_slice(&plane);
        }
        if let Some(na) = above {
            let plane: Vec<f64> = comm.recv_val(na, TAG_HALO_DOWN);
            ext[self.nrows + self.plane..].copy_from_slice(&plane);
        }
        ext
    }

    /// Sparse matrix-vector product `out = A * v` with halo exchange.
    fn matvec(&self, comm: &mut Comm, v: &[f64], out: &mut [f64]) {
        let ext = self.with_halo(comm, v);
        for (row, out_row) in out.iter_mut().enumerate() {
            let mut sum = 0.0;
            for slot in 0..27 {
                let col = self.cols[row * 27 + slot];
                if col >= 0 {
                    sum += self.vals[row * 27 + slot] * ext[col as usize];
                }
            }
            *out_row = sum;
        }
    }

    /// One CG iteration (collective). Returns the residual 2-norm.
    pub fn step(&mut self, comm: &mut Comm) -> f64 {
        if !self.started {
            // r = b - A x with x = 0; p = r.
            let mut ax = vec![0.0; self.nrows];
            let x = self.x.clone();
            self.matvec(comm, &x, &mut ax);
            for ((r, b), ax) in self.r.iter_mut().zip(&self.b).zip(&ax) {
                *r = b - ax;
            }
            self.p.copy_from_slice(&self.r);
            self.rtrans = self.ddot(comm, &self.r.clone(), &self.r.clone());
            self.started = true;
        }
        let mut ap = vec![0.0; self.nrows];
        let p = self.p.clone();
        self.matvec(comm, &p, &mut ap);
        let p_ap = self.ddot(comm, &self.p.clone(), &ap);
        let alpha = self.rtrans / p_ap;
        for ((x, r), (p, ap)) in self
            .x
            .iter_mut()
            .zip(self.r.iter_mut())
            .zip(self.p.iter().zip(&ap))
        {
            *x += alpha * p;
            *r -= alpha * ap;
        }
        let new_rtrans = self.ddot(comm, &self.r.clone(), &self.r.clone());
        let beta = new_rtrans / self.rtrans;
        self.rtrans = new_rtrans;
        for (p, r) in self.p.iter_mut().zip(&self.r) {
            *p = r + beta * *p;
        }
        self.iter += 1;
        self.rtrans.sqrt()
    }

    /// Run `iters` CG iterations; returns the final residual norm.
    pub fn run(&mut self, comm: &mut Comm, iters: u64) -> f64 {
        let mut res = self.rtrans.sqrt();
        for _ in 0..iters {
            res = self.step(comm);
        }
        res
    }

    /// Max-norm distance of `x` from the exact solution (all ones).
    pub fn solution_error(&self) -> f64 {
        self.x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max)
    }

    // ---- checkpoint integration ----------------------------------------

    /// Allocate heap regions sized for this problem.
    pub fn alloc_regions(&self, heap: &mut TrackedHeap) -> HpccgRegions {
        let live = self.memory_bytes();
        let slack = (live as f64 * self.cfg.slack_factor) as usize;
        let private_len = (live as f64 * self.cfg.private_factor) as usize;
        let private = heap.alloc(private_len);
        heap.write(
            private,
            0,
            &crate::util::rank_private_bytes(self.rank, private_len),
        );
        HpccgRegions {
            vals: heap.alloc(self.vals.len() * 8),
            slack: heap.alloc(slack),
            private,
            cols: heap.alloc(self.cols.len() * 4),
            x: heap.alloc(self.nrows * 8),
            b: heap.alloc(self.nrows * 8),
            r: heap.alloc(self.nrows * 8),
            p: heap.alloc(self.nrows * 8),
            meta: heap.alloc(24),
        }
    }

    /// Write all solver state into the heap (call right before checkpoint).
    pub fn sync_to_heap(&self, heap: &mut TrackedHeap, regions: &HpccgRegions) {
        heap.write(regions.vals, 0, &f64s_to_bytes(&self.vals));
        heap.write(regions.cols, 0, &crate::util::i32s_to_bytes(&self.cols));
        heap.write(regions.x, 0, &f64s_to_bytes(&self.x));
        heap.write(regions.b, 0, &f64s_to_bytes(&self.b));
        heap.write(regions.r, 0, &f64s_to_bytes(&self.r));
        heap.write(regions.p, 0, &f64s_to_bytes(&self.p));
        let mut meta = Vec::with_capacity(24);
        meta.extend_from_slice(&self.iter.to_le_bytes());
        meta.extend_from_slice(&self.rtrans.to_le_bytes());
        meta.extend_from_slice(&u64::from(self.started).to_le_bytes());
        heap.write(regions.meta, 0, &meta);
    }

    /// Rebuild solver state from a restored heap.
    pub fn load_from_heap(
        heap: &TrackedHeap,
        regions: &HpccgRegions,
        rank: u32,
        size: u32,
        cfg: HpccgConfig,
    ) -> Self {
        let mut app = Self::new(rank, size, cfg);
        app.vals = bytes_to_f64s(heap.read(regions.vals));
        app.cols = crate::util::bytes_to_i32s(heap.read(regions.cols));
        app.x = bytes_to_f64s(heap.read(regions.x));
        app.b = bytes_to_f64s(heap.read(regions.b));
        app.r = bytes_to_f64s(heap.read(regions.r));
        app.p = bytes_to_f64s(heap.read(regions.p));
        let meta = heap.read(regions.meta);
        app.iter = u64::from_le_bytes(meta[..8].try_into().expect("8 bytes"));
        app.rtrans = f64::from_le_bytes(meta[8..16].try_into().expect("8 bytes"));
        app.started = u64::from_le_bytes(meta[16..24].try_into().expect("8 bytes")) != 0;
        app
    }

    /// Borrow the raw state vectors (tests/diagnostics).
    pub fn state(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.x, &self.r, &self.p)
    }

    /// Borrow the matrix arrays (tests/diagnostics).
    pub fn matrix(&self) -> (&[f64], &[i32]) {
        (&self.vals, &self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replidedup_mpi::WorldConfig;

    fn small() -> HpccgConfig {
        HpccgConfig {
            nx: 6,
            ny: 6,
            nz: 4,
            slack_factor: 0.5,
            private_factor: 0.1,
        }
    }

    #[test]
    fn interior_row_has_27_entries() {
        let app = Hpccg::new(1, 3, small());
        // Row in the middle of the slab: full 27-point stencil.
        let row = 2 + 2 * 6 + 2 * 36;
        let nnz = (0..27).filter(|s| app.cols[row * 27 + s] >= 0).count();
        assert_eq!(nnz, 27);
        assert_eq!(app.b[row], 27.0 - 26.0);
    }

    #[test]
    fn corner_row_is_truncated() {
        let app = Hpccg::new(0, 1, small());
        let nnz = (0..27).filter(|&s| app.cols[s] >= 0).count();
        assert_eq!(nnz, 8, "global corner sees 2x2x2 cells");
        assert_eq!(app.b[0], 27.0 - 7.0);
    }

    #[test]
    fn matrix_is_identical_across_interior_ranks() {
        // The redundancy HPCCG exhibits in the paper: local-indexed matrix
        // arrays repeat bit-for-bit on interior ranks.
        let a = Hpccg::new(1, 4, small());
        let b = Hpccg::new(2, 4, small());
        assert_eq!(a.matrix(), b.matrix());
        // Boundary rank differs (truncated stencil at global z ends).
        let c = Hpccg::new(0, 4, small());
        assert_ne!(a.matrix().1, c.matrix().1);
    }

    #[test]
    fn single_rank_cg_converges_to_ones() {
        let out = WorldConfig::default()
            .launch(1, |comm| {
                let mut app = Hpccg::new(0, 1, small());
                let res = app.run(comm, 60);
                (res, app.solution_error())
            })
            .expect_all();
        let (res, err) = out.results[0];
        assert!(res < 1e-8, "residual {res}");
        assert!(err < 1e-6, "solution error {err}");
    }

    #[test]
    fn distributed_cg_converges_and_matches_single_rank_shape() {
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let mut app = Hpccg::new(comm.rank(), comm.size(), small());
                let res = app.run(comm, 80);
                (res, app.solution_error())
            })
            .expect_all();
        for (res, err) in out.results {
            assert!(res < 1e-8, "residual {res}");
            assert!(err < 1e-6, "solution error {err}");
        }
    }

    #[test]
    fn interior_ranks_stay_bit_identical_mid_solve() {
        // Translation symmetry: interior ranks of a 5-slab stack see
        // identical local problems for the first iterations (boundary
        // effects propagate one plane per matvec; nz=4 gives a few clean
        // steps).
        let out = WorldConfig::default()
            .launch(5, |comm| {
                let mut app = Hpccg::new(comm.rank(), comm.size(), small());
                app.run(comm, 2);
                app.state().0.to_vec()
            })
            .expect_all();
        assert_eq!(
            out.results[1], out.results[2],
            "interior ranks identical at iter 2"
        );
        assert_eq!(out.results[2], out.results[3]);
        assert_ne!(out.results[0], out.results[2], "boundary rank diverges");
    }

    #[test]
    fn residual_decreases_monotonically_early() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let mut app = Hpccg::new(comm.rank(), comm.size(), small());
                let r1 = app.step(comm);
                let r5 = app.run(comm, 4);
                (r1, r5)
            })
            .expect_all();
        for (r1, r5) in out.results {
            assert!(r5 < r1, "CG must reduce the residual: {r1} -> {r5}");
        }
    }

    #[test]
    fn heap_roundtrip_resumes_exactly() {
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let mut app = Hpccg::new(comm.rank(), comm.size(), small());
                app.run(comm, 5);
                let mut heap = TrackedHeap::new(4096);
                let regions = app.alloc_regions(&mut heap);
                app.sync_to_heap(&mut heap, &regions);
                // Continue the original 3 more steps.
                let expect = app.run(comm, 3);
                // Restore the snapshot and replay the same 3 steps.
                let mut replay =
                    Hpccg::load_from_heap(&heap, &regions, comm.rank(), comm.size(), small());
                assert_eq!(replay.iterations(), 5);
                let got = replay.run(comm, 3);
                (
                    expect,
                    got,
                    app.state().0.to_vec(),
                    replay.state().0.to_vec(),
                )
            })
            .expect_all();
        for (expect, got, x1, x2) in out.results {
            assert_eq!(expect.to_bits(), got.to_bits(), "bit-identical resume");
            assert_eq!(x1, x2);
        }
    }

    #[test]
    fn memory_bytes_reflects_arrays() {
        let app = Hpccg::new(0, 1, small());
        let n = 6 * 6 * 4;
        assert_eq!(app.memory_bytes(), n * 27 * 8 + n * 27 * 4 + 4 * n * 8);
    }
}
