//! Synthetic workloads with controllable cross-rank redundancy.
//!
//! The real mini-apps ([`crate::hpccg`], [`crate::cm1`]) produce *natural*
//! redundancy; sweeps and property tests need redundancy that is dialed in
//! exactly. A [`SyntheticWorkload`] composes each rank's buffer from four
//! chunk classes:
//!
//! * **global** — identical on every rank (what coll-dedup exploits),
//! * **grouped** — identical within groups of `group_size` consecutive
//!   ranks (partial duplication, frequency = group size),
//! * **private** — unique to the rank (no strategy can reduce these),
//! * **local-dup** — each repeated `local_repeat` times within the same
//!   rank (what local-dedup already catches).
//!
//! Buffers are deterministic in `(seed, rank)` so worlds can be re-created
//! bit-identically across processes and runs.

/// Chunk-class mix of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticWorkload {
    /// Chunk size in bytes.
    pub chunk_size: usize,
    /// Chunks identical across every rank.
    pub global_chunks: usize,
    /// Chunks identical within groups of `group_size` ranks.
    pub grouped_chunks: usize,
    /// Ranks per group for the grouped class.
    pub group_size: u32,
    /// Chunks unique to each rank.
    pub private_chunks: usize,
    /// Distinct local-duplicate chunks per rank...
    pub local_dup_chunks: usize,
    /// ...each repeated this many times in the buffer.
    pub local_repeat: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for SyntheticWorkload {
    fn default() -> Self {
        Self {
            chunk_size: 4096,
            global_chunks: 16,
            grouped_chunks: 8,
            group_size: 4,
            private_chunks: 8,
            local_dup_chunks: 4,
            local_repeat: 2,
            seed: 0x5EED,
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SyntheticWorkload {
    /// Total chunks in each rank's buffer.
    pub fn chunks_per_rank(&self) -> usize {
        self.global_chunks
            + self.grouped_chunks
            + self.private_chunks
            + self.local_dup_chunks * self.local_repeat
    }

    /// Buffer length per rank in bytes.
    pub fn buffer_len(&self) -> usize {
        self.chunks_per_rank() * self.chunk_size
    }

    /// Expected locally unique chunks per rank (after phase-one dedup).
    pub fn locally_unique_per_rank(&self) -> usize {
        self.global_chunks + self.grouped_chunks + self.private_chunks + self.local_dup_chunks
    }

    /// Expected globally distinct chunks across `world` ranks.
    pub fn globally_unique(&self, world: u32) -> usize {
        let groups = world.div_ceil(self.group_size.max(1)) as usize;
        self.global_chunks
            + self.grouped_chunks * groups
            + (self.private_chunks + self.local_dup_chunks) * world as usize
    }

    /// Fill a chunk deterministically from a class-specific key.
    fn fill_chunk(&self, out: &mut Vec<u8>, key: u64) {
        let mut state = splitmix(self.seed ^ key);
        let start = out.len();
        out.resize(start + self.chunk_size, 0);
        for word in out[start..].chunks_mut(8) {
            state = splitmix(state);
            let b = state.to_le_bytes();
            word.copy_from_slice(&b[..word.len()]);
        }
    }

    /// Generate rank `rank`'s buffer.
    pub fn generate(&self, rank: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buffer_len());
        for i in 0..self.global_chunks {
            self.fill_chunk(&mut out, 0x0100_0000_0000 + i as u64);
        }
        let group = u64::from(rank / self.group_size.max(1));
        for i in 0..self.grouped_chunks {
            self.fill_chunk(&mut out, 0x0200_0000_0000 + (group << 20) + i as u64);
        }
        for i in 0..self.private_chunks {
            self.fill_chunk(
                &mut out,
                0x0300_0000_0000 + (u64::from(rank) << 20) + i as u64,
            );
        }
        for i in 0..self.local_dup_chunks {
            for _ in 0..self.local_repeat {
                self.fill_chunk(
                    &mut out,
                    0x0400_0000_0000 + (u64::from(rank) << 20) + i as u64,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct_chunks(bufs: &[Vec<u8>], cs: usize) -> usize {
        let mut set = HashSet::new();
        for b in bufs {
            for c in b.chunks(cs) {
                set.insert(c.to_vec());
            }
        }
        set.len()
    }

    #[test]
    fn generation_is_deterministic() {
        let w = SyntheticWorkload::default();
        assert_eq!(w.generate(3), w.generate(3));
        assert_ne!(w.generate(3), w.generate(4));
        let other = SyntheticWorkload { seed: 1, ..w };
        assert_ne!(w.generate(3), other.generate(3));
    }

    #[test]
    fn buffer_len_matches() {
        let w = SyntheticWorkload::default();
        assert_eq!(w.generate(0).len(), w.buffer_len());
    }

    #[test]
    fn class_counts_are_exact() {
        let w = SyntheticWorkload {
            chunk_size: 64,
            global_chunks: 3,
            grouped_chunks: 2,
            group_size: 2,
            private_chunks: 4,
            local_dup_chunks: 1,
            local_repeat: 3,
            seed: 7,
        };
        assert_eq!(w.chunks_per_rank(), 3 + 2 + 4 + 3);
        assert_eq!(w.locally_unique_per_rank(), 10);
        // 4 ranks = 2 groups.
        let bufs: Vec<_> = (0..4).map(|r| w.generate(r)).collect();
        let expect = w.globally_unique(4);
        assert_eq!(distinct_chunks(&bufs, 64), expect);
        assert_eq!(expect, 3 + 2 * 2 + (4 + 1) * 4);
    }

    #[test]
    fn global_chunks_are_shared_across_ranks() {
        let w = SyntheticWorkload {
            chunk_size: 64,
            grouped_chunks: 0,
            private_chunks: 0,
            local_dup_chunks: 0,
            global_chunks: 5,
            ..Default::default()
        };
        assert_eq!(w.generate(0), w.generate(41));
    }

    #[test]
    fn grouped_chunks_shared_only_within_group() {
        let w = SyntheticWorkload {
            chunk_size: 64,
            global_chunks: 0,
            grouped_chunks: 2,
            group_size: 3,
            private_chunks: 0,
            local_dup_chunks: 0,
            local_repeat: 0,
            seed: 9,
        };
        assert_eq!(w.generate(0), w.generate(2), "same group");
        assert_ne!(w.generate(2), w.generate(3), "different group");
    }

    #[test]
    fn local_dups_repeat_within_buffer() {
        let w = SyntheticWorkload {
            chunk_size: 64,
            global_chunks: 0,
            grouped_chunks: 0,
            private_chunks: 0,
            local_dup_chunks: 2,
            local_repeat: 3,
            seed: 5,
            group_size: 1,
        };
        let buf = w.generate(0);
        let chunks: Vec<&[u8]> = buf.chunks(64).collect();
        assert_eq!(chunks.len(), 6);
        assert_eq!(chunks[0], chunks[1]);
        assert_eq!(chunks[1], chunks[2]);
        assert_ne!(chunks[2], chunks[3]);
        assert_eq!(chunks[3], chunks[5]);
    }

    #[test]
    fn chunk_content_differs_between_classes() {
        let w = SyntheticWorkload {
            chunk_size: 64,
            ..Default::default()
        };
        let buf = w.generate(0);
        let set = distinct_chunks(&[buf], 64);
        assert_eq!(set, w.locally_unique_per_rank());
    }
}
