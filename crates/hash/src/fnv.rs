//! FNV-1a: the "computationally cheap hash function" end of the paper's
//! speed/collision trade-off (Section IV and the NetApp-style
//! hash-plus-direct-comparison schemes in its related work).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a over `data`.
#[inline]
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming FNV-1a hasher (implements [`std::hash::Hasher`]).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl std::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    // Reference vectors from the FNV reference code (draft-eastlake-fnv).
    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox";
        let mut h = Fnv64::new();
        h.write(&data[..7]);
        h.write(&data[7..]);
        assert_eq!(h.finish(), fnv1a_64(data));
        assert_eq!(h.value(), h.finish());
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        assert_ne!(fnv1a_64(b"chunk-a"), fnv1a_64(b"chunk-b"));
    }
}
