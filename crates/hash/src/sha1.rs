//! SHA-1 (RFC 3174) implemented from scratch.
//!
//! The paper fingerprints 4 KiB memory pages with OpenSSL's SHA-1. We keep
//! the same algorithm for fidelity (collision behaviour, digest width,
//! throughput shape) without pulling a crypto dependency. SHA-1 is not
//! collision-resistant against adversaries anymore, but the paper's threat
//! model is accidental collisions between checkpoint pages, where 160 bits
//! remain far beyond birthday reach at any realistic chunk count.

/// Streaming SHA-1 hasher.
///
/// ```
/// use replidedup_hash::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), Sha1::digest(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    /// Partially filled block.
    block: [u8; 64],
    block_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Initialization vector from RFC 3174 section 6.1.
    const IV: [u32; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];

    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: Self::IV,
            len: 0,
            block: [0; 64],
            block_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.block_len > 0 {
            let take = (64 - self.block_len).min(data.len());
            self.block[self.block_len..self.block_len + take].copy_from_slice(&data[..take]);
            self.block_len += take;
            data = &data[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            }
        }
        if data.is_empty() {
            // Nothing left beyond the partial block — which must survive.
            return;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            // The unwrap cannot fail: chunks_exact yields 64-byte slices.
            let arr: &[u8; 64] = block.try_into().unwrap();
            self.compress(arr);
        }
        let rem = chunks.remainder();
        self.block[..rem.len()].copy_from_slice(rem);
        self.block_len = rem.len();
    }

    /// Finish and produce the 160-bit digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        // The two length updates above must not count toward the length,
        // but `update` already latched `bit_len` before padding began.
        let mut block = self.block;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().enumerate().take(16) {
            *word = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: [u8; 20]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 3174 / FIPS 180 test vectors.
    #[test]
    fn vector_empty() {
        assert_eq!(
            hex(Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn vector_abc() {
        assert_eq!(
            hex(Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_two_blocks() {
        assert_eq!(
            hex(Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn vector_quick_brown_fox() {
        assert_eq!(
            hex(Sha1::digest(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 256) as u8).collect();
        let expect = Sha1::digest(&data);
        for split in 0..=data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let data = vec![0xabu8; 300];
        let mut h = Sha1::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths straddling the 55/56/63/64 padding boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5au8; len];
            let mut h = Sha1::new();
            h.update(&data);
            // Sanity: must match a fresh one-shot.
            assert_eq!(h.finalize(), Sha1::digest(&data), "len {len}");
        }
    }
}
