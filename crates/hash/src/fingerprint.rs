//! Chunk fingerprints and fingerprint-keyed collections.
//!
//! A [`Fingerprint`] "uniquely" represents a chunk (the paper abuses the
//! term: collisions are theoretically possible but negligible). Because
//! fingerprints are already uniformly distributed hash output, keying a
//! `HashMap` by them does not need a second quality hash — [`FpBuildHasher`]
//! just lifts the first eight digest bytes into the table hash, which the
//! perf guide for this domain calls the `nohash` pattern.

use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A 160-bit chunk identity (SHA-1-sized; other [`crate::ChunkHasher`]s
/// widen to the same size).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint([u8; 20]);

impl Fingerprint {
    /// Width of a fingerprint in bytes (used by the wire codec and the
    /// traffic model: the reduction exchanges `F * (SIZE + metadata)` bytes
    /// per merge step).
    pub const SIZE: usize = 20;

    /// Wrap a raw digest.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Self(bytes)
    }

    /// Borrow the raw digest.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// First eight digest bytes as a little-endian integer; used as the
    /// table hash and for cheap deterministic tie-breaking.
    pub fn prefix64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().unwrap())
    }

    /// A fingerprint that is all zeros — handy sentinel for tests.
    pub const ZERO: Fingerprint = Fingerprint([0; 20]);

    /// Deterministically derive a fingerprint from an integer. Test helper:
    /// *not* a hash of the integer's chunk content.
    pub fn synthetic(n: u64) -> Self {
        let mut b = [0u8; 20];
        b[..8].copy_from_slice(&n.to_le_bytes());
        b[8..16].copy_from_slice(&n.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
        Self(b)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({self})")
    }
}

impl fmt::Display for Fingerprint {
    /// Short hex form (first 8 bytes) — full digests make logs unreadable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Fingerprint {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Identity hasher for fingerprint keys: the digest is already uniform.
#[derive(Default)]
pub struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Called once per key with the 20 digest bytes; fold in the first 8.
        let mut prefix = [0u8; 8];
        let n = bytes.len().min(8);
        prefix[..n].copy_from_slice(&bytes[..n]);
        self.0 ^= u64::from_le_bytes(prefix);
    }

    fn write_u64(&mut self, i: u64) {
        self.0 ^= i;
    }
}

/// `BuildHasher` for fingerprint-keyed maps.
pub type FpBuildHasher = BuildHasherDefault<FpHasher>;

/// `HashMap` keyed by [`Fingerprint`] with the identity hasher.
pub type FpHashMap<V> = std::collections::HashMap<Fingerprint, V, FpBuildHasher>;

/// `HashSet` of [`Fingerprint`]s with the identity hasher.
pub type FpHashSet = std::collections::HashSet<Fingerprint, FpBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix64_reads_first_bytes() {
        let mut b = [0u8; 20];
        b[..8].copy_from_slice(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        assert_eq!(Fingerprint::from_bytes(b).prefix64(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn display_is_short_hex() {
        let fp = Fingerprint::synthetic(0x01);
        let s = format!("{fp}");
        assert_eq!(s.len(), 16);
        assert!(s.starts_with("01"));
    }

    #[test]
    fn synthetic_is_injective_on_small_range() {
        let mut set = FpHashSet::default();
        for n in 0..10_000u64 {
            assert!(set.insert(Fingerprint::synthetic(n)));
        }
    }

    #[test]
    fn fp_map_basic_ops() {
        let mut m: FpHashMap<u32> = FpHashMap::default();
        let a = Fingerprint::synthetic(1);
        let b = Fingerprint::synthetic(2);
        m.insert(a, 10);
        m.insert(b, 20);
        *m.entry(a).or_insert(0) += 1;
        assert_eq!(m[&a], 11);
        assert_eq!(m[&b], 20);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ordering_is_lexicographic_on_digest() {
        let lo = Fingerprint::from_bytes([0u8; 20]);
        let mut hi_bytes = [0u8; 20];
        hi_bytes[0] = 1;
        let hi = Fingerprint::from_bytes(hi_bytes);
        assert!(lo < hi);
        assert_eq!(lo, Fingerprint::ZERO);
    }
}
