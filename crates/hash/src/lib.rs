//! Hashing, fingerprinting and chunking substrate for `replidedup`.
//!
//! The IPDPS'15 collective deduplication scheme identifies naturally
//! distributed duplicates by splitting each rank's dataset into small
//! fixed-size chunks and representing every chunk by a cryptographic
//! fingerprint. This crate provides everything below that line:
//!
//! * [`Sha1`] — a from-scratch RFC 3174 implementation (the hash the paper
//!   uses, via OpenSSL in the original prototype),
//! * [`Fingerprint`] — a 160-bit chunk identity with cheap `HashMap` keying,
//! * [`ChunkHasher`] — the pluggable hash-function trait the paper calls for
//!   ("our approach fully supports other hash functions"), with SHA-1 and
//!   FNV-1a backends,
//! * [`chunk`] — fixed-size chunking (chunk == memory page in the paper) and
//!   content-defined chunking on Rabin fingerprints (the related-work
//!   alternative, provided as an extension),
//! * [`fingerprint_buffer`] / [`fingerprint_buffer_parallel`] — bulk chunk
//!   fingerprinting, optionally rayon-parallel.

pub mod chunk;
pub mod fingerprint;
pub mod fnv;
pub mod gear;
pub mod rabin;
pub mod sha1;

pub use chunk::{chunk_ranges, ChunkRange, Chunker, ChunkerKind, FixedChunker, ResolvedChunker};
pub use fingerprint::{Fingerprint, FpBuildHasher, FpHashMap, FpHashSet};
pub use fnv::{fnv1a_64, Fnv64};
pub use gear::{GearChunker, GearParams};
pub use rabin::{CdcChunker, RabinHasher, RabinParams};
pub use sha1::Sha1;

/// A pluggable chunk hash function producing a [`Fingerprint`].
///
/// The paper uses SHA-1 ("a crypto-grade hash function specifically designed
/// to minimize the chance of collisions") but explicitly supports trading
/// collision resistance for speed; [`FnvChunkHasher`] is that trade-off.
pub trait ChunkHasher: Send + Sync {
    /// Human-readable algorithm name (used in experiment logs).
    fn name(&self) -> &'static str;
    /// Fingerprint a single chunk.
    fn fingerprint(&self, chunk: &[u8]) -> Fingerprint;
}

/// SHA-1 backed [`ChunkHasher`] — the paper's default.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sha1ChunkHasher;

impl ChunkHasher for Sha1ChunkHasher {
    fn name(&self) -> &'static str {
        "sha1"
    }

    fn fingerprint(&self, chunk: &[u8]) -> Fingerprint {
        Fingerprint::from_bytes(Sha1::digest(chunk))
    }
}

/// FNV-1a backed [`ChunkHasher`]: computationally cheap, occasional
/// collisions acceptable (paper, Section IV). The 64-bit FNV state is
/// widened to 160 bits by chaining three seeded finalizer passes so the
/// [`Fingerprint`] width stays uniform across hashers.
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvChunkHasher;

impl ChunkHasher for FnvChunkHasher {
    fn name(&self) -> &'static str {
        "fnv1a"
    }

    fn fingerprint(&self, chunk: &[u8]) -> Fingerprint {
        let mut out = [0u8; 20];
        let mut seed = fnv1a_64(chunk);
        for word in out.chunks_mut(8) {
            // Cheap splitmix64 finalizer decorrelates the three lanes.
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            word.copy_from_slice(&b[..word.len()]);
        }
        Fingerprint::from_bytes(out)
    }
}

/// Fingerprint every fixed-size chunk of `buf` sequentially.
///
/// The final chunk may be shorter than `chunk_size` when the buffer length
/// is not a multiple of it (the library must support arbitrary dataset
/// sizes, not just page-aligned ones).
pub fn fingerprint_buffer(
    hasher: &dyn ChunkHasher,
    buf: &[u8],
    chunk_size: usize,
) -> Vec<Fingerprint> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    buf.chunks(chunk_size)
        .map(|c| hasher.fingerprint(c))
        .collect()
}

/// Fingerprint every fixed-size chunk of `buf` across all cores.
///
/// Rank-local hashing is embarrassingly parallel; the paper's testbed
/// runs 12 ranks on a 6-core node, so intra-rank parallel hashing models
/// the same aggregate CPU throughput. Chunks are split into contiguous
/// shards, one scoped worker thread per shard, and the shard outputs are
/// concatenated — the result is bit-identical to [`fingerprint_buffer`].
pub fn fingerprint_buffer_parallel(
    hasher: &(dyn ChunkHasher + Sync),
    buf: &[u8],
    chunk_size: usize,
) -> Vec<Fingerprint> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunk_count = buf.len().div_ceil(chunk_size);
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(chunk_count);
    if workers <= 1 {
        return fingerprint_buffer(hasher, buf, chunk_size);
    }
    // Shard on chunk boundaries so every worker hashes whole chunks.
    let chunks_per_worker = chunk_count.div_ceil(workers);
    let shard_bytes = chunks_per_worker * chunk_size;
    let mut out = Vec::with_capacity(chunk_count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = buf
            .chunks(shard_bytes)
            .map(|shard| scope.spawn(move || fingerprint_buffer(hasher, shard, chunk_size)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("hash worker panicked"));
        }
    });
    out
}

/// Fingerprint each of `ranges` (as produced by a [`Chunker`]) over `buf`,
/// sequentially. The variable-length analogue of [`fingerprint_buffer`].
pub fn fingerprint_ranges(
    hasher: &dyn ChunkHasher,
    buf: &[u8],
    ranges: &[ChunkRange],
) -> Vec<Fingerprint> {
    ranges
        .iter()
        .map(|r| hasher.fingerprint(r.slice(buf)))
        .collect()
}

/// Fingerprint each of `ranges` over `buf` across all cores.
///
/// Shards the *range list* (not the byte buffer) into contiguous runs,
/// one scoped worker per run, so variable-length chunks never straddle a
/// shard. Bit-identical to [`fingerprint_ranges`].
pub fn fingerprint_ranges_parallel(
    hasher: &(dyn ChunkHasher + Sync),
    buf: &[u8],
    ranges: &[ChunkRange],
) -> Vec<Fingerprint> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(ranges.len());
    if workers <= 1 {
        return fingerprint_ranges(hasher, buf, ranges);
    }
    let per_worker = ranges.len().div_ceil(workers);
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .chunks(per_worker)
            .map(|shard| scope.spawn(move || fingerprint_ranges(hasher, buf, shard)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("hash worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_chunk_hasher_matches_raw_sha1() {
        let h = Sha1ChunkHasher;
        let fp = h.fingerprint(b"abc");
        assert_eq!(fp.as_bytes(), &Sha1::digest(b"abc"));
        assert_eq!(h.name(), "sha1");
    }

    #[test]
    fn fnv_chunk_hasher_is_deterministic_and_distinct() {
        let h = FnvChunkHasher;
        assert_eq!(h.fingerprint(b"abc"), h.fingerprint(b"abc"));
        assert_ne!(h.fingerprint(b"abc"), h.fingerprint(b"abd"));
        assert_eq!(h.name(), "fnv1a");
    }

    #[test]
    fn fnv_lanes_are_decorrelated() {
        let fp = FnvChunkHasher.fingerprint(b"lane test");
        let b = fp.as_bytes();
        assert_ne!(&b[0..8], &b[8..16], "lanes must differ");
    }

    #[test]
    fn fingerprint_buffer_handles_tail_chunk() {
        let buf = vec![7u8; 10];
        let fps = fingerprint_buffer(&Sha1ChunkHasher, &buf, 4);
        assert_eq!(fps.len(), 3);
        assert_eq!(fps[0], fps[1], "identical full chunks share fingerprints");
        assert_ne!(fps[0], fps[2], "short tail chunk hashes differently");
    }

    #[test]
    fn fingerprint_buffer_empty() {
        let fps = fingerprint_buffer(&Sha1ChunkHasher, &[], 4096);
        assert!(fps.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let buf: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let seq = fingerprint_buffer(&Sha1ChunkHasher, &buf, 4096);
        let par = fingerprint_buffer_parallel(&Sha1ChunkHasher, &buf, 4096);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        fingerprint_buffer(&Sha1ChunkHasher, b"x", 0);
    }

    #[test]
    fn fingerprint_ranges_matches_fixed_buffer_path() {
        let buf = vec![7u8; 10];
        let ranges = chunk_ranges(buf.len(), 4);
        let by_range = fingerprint_ranges(&Sha1ChunkHasher, &buf, &ranges);
        let by_buffer = fingerprint_buffer(&Sha1ChunkHasher, &buf, 4);
        assert_eq!(by_range, by_buffer);
    }

    #[test]
    fn fingerprint_ranges_parallel_matches_sequential_on_variable_chunks() {
        let buf: Vec<u8> = (0..120_000u32).map(|i| (i % 251) as u8).collect();
        let ranges = GearChunker::new(GearParams {
            min_size: 64,
            avg_size: 256,
            max_size: 2048,
        })
        .chunks(&buf);
        assert!(ranges.len() > 8, "want enough chunks to shard");
        let seq = fingerprint_ranges(&Sha1ChunkHasher, &buf, &ranges);
        let par = fingerprint_ranges_parallel(&Sha1ChunkHasher, &buf, &ranges);
        assert_eq!(seq, par);
    }

    #[test]
    fn fingerprint_ranges_empty() {
        assert!(fingerprint_ranges(&Sha1ChunkHasher, &[], &[]).is_empty());
    }
}
