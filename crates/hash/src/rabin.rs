//! Rabin fingerprinting and content-defined chunking (CDC).
//!
//! The paper uses *static* (fixed-size) chunking but surveys content-defined
//! approaches — a sliding window hashed at each step with Rabin's method,
//! cutting a chunk wherever the window hash matches a mask (LBFS-style).
//! This module provides that alternative so chunk-size sensitivity studies
//! (called "an interesting topic in itself" by the paper) can be run against
//! the same dedup pipeline.
//!
//! The implementation is the classic polynomial rolling hash over GF(2):
//! an irreducible degree-63 polynomial, precomputed push/pop tables, O(1)
//! per-byte roll.

use super::chunk::{ChunkRange, Chunker};

/// Parameters for Rabin-based CDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RabinParams {
    /// Sliding window width in bytes (LBFS used 48).
    pub window: usize,
    /// A chunk boundary is declared when `hash & mask == mask_value`.
    /// With `mask = 2^k - 1` the expected chunk size is `2^k` bytes.
    pub mask: u64,
    /// Target value the masked hash must take at a cut point.
    pub mask_value: u64,
    /// Minimum chunk size (suppresses pathological tiny chunks).
    pub min_size: usize,
    /// Maximum chunk size (forces a cut on incompressible data).
    pub max_size: usize,
}

impl Default for RabinParams {
    fn default() -> Self {
        // Expected chunk ~4 KiB, matching the paper's fixed chunk size.
        Self {
            window: 48,
            mask: (1 << 12) - 1,
            mask_value: (1 << 12) - 1,
            min_size: 1 << 10,
            max_size: 1 << 15,
        }
    }
}

/// Irreducible polynomial of degree 53 over GF(2) used by the rolling hash
/// (same family as LBFS). Bit i set means coefficient of x^i.
const POLY: u64 = 0x003D_A335_8B4D_C173;

/// Degree of [`POLY`].
const POLY_DEGREE: u32 = 53;

/// Rolling Rabin hasher over a fixed-width window.
#[derive(Clone)]
pub struct RabinHasher {
    /// table mapping the outgoing byte to its contribution, for O(1) pop.
    pop_table: [u64; 256],
    /// table for appending a byte: precomputed (hash_high_byte -> folded).
    push_table: [u64; 256],
    window: usize,
    hash: u64,
    /// Ring buffer of the last `window` bytes.
    ring: Vec<u8>,
    pos: usize,
    filled: usize,
}

impl std::fmt::Debug for RabinHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RabinHasher")
            .field("window", &self.window)
            .field("hash", &self.hash)
            .field("filled", &self.filled)
            .finish()
    }
}

/// Multiply-free modular reduction step: fold the single overflow bit back
/// through POLY. Callers guarantee `h < 2^(POLY_DEGREE + 1)`.
#[inline]
fn poly_mod_step(mut h: u64) -> u64 {
    if (h >> POLY_DEGREE) & 1 != 0 {
        // POLY has bit POLY_DEGREE set, so this clears it and folds the rest.
        h ^= POLY;
    }
    debug_assert!(h < (1 << POLY_DEGREE));
    h
}

/// Shift `h` left by 8 bits modulo POLY.
#[inline]
fn shift8_mod(h: u64, shift_table: &[u64; 256]) -> u64 {
    let top = (h >> (POLY_DEGREE - 8)) as usize & 0xff;
    ((h << 8) & ((1 << POLY_DEGREE) - 1)) ^ shift_table[top]
}

impl RabinHasher {
    /// Build a hasher with the given window width.
    ///
    /// # Panics
    /// If `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        // push_table[t] = (t << POLY_DEGREE) mod POLY, so appending a byte is
        // hash = ((hash << 8) | byte) mod POLY in O(1).
        let mut push_table = [0u64; 256];
        for (t, entry) in push_table.iter_mut().enumerate() {
            let mut h = t as u64;
            for _ in 0..POLY_DEGREE {
                h <<= 1;
                h = poly_mod_step(h);
            }
            *entry = h;
        }
        // pop_table[b] = (b << (8*(window-1))) mod POLY: the contribution the
        // oldest byte holds in the current hash, i.e. just before the next
        // shift would push it out of the window.
        let mut pop_table = [0u64; 256];
        for (b, entry) in pop_table.iter_mut().enumerate() {
            let mut h = b as u64;
            for _ in 0..window - 1 {
                h = shift8_mod(h, &push_table);
            }
            *entry = h;
        }
        Self {
            pop_table,
            push_table,
            window,
            hash: 0,
            ring: vec![0; window],
            pos: 0,
            filled: 0,
        }
    }

    /// Reset to the empty-window state.
    pub fn reset(&mut self) {
        self.hash = 0;
        self.pos = 0;
        self.filled = 0;
        self.ring.fill(0);
    }

    /// Slide one byte into the window (and the oldest byte out, once full).
    #[inline]
    pub fn roll(&mut self, byte: u8) -> u64 {
        let outgoing = self.ring[self.pos];
        self.ring[self.pos] = byte;
        self.pos = (self.pos + 1) % self.window;
        if self.filled < self.window {
            self.filled += 1;
        } else {
            self.hash ^= self.pop_table[outgoing as usize];
        }
        self.hash = shift8_mod(self.hash, &self.push_table) ^ u64::from(byte);
        self.hash = poly_mod_step(self.hash);
        self.hash
    }

    /// Current window hash.
    pub fn value(&self) -> u64 {
        self.hash
    }
}

/// Content-defined chunker driven by a [`RabinHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CdcChunker {
    /// Cut-point and size parameters.
    pub params: RabinParams,
}

impl CdcChunker {
    /// Chunker with explicit parameters.
    ///
    /// # Panics
    /// If `min_size` is zero or exceeds `max_size`, or the window is zero.
    pub fn new(params: RabinParams) -> Self {
        assert!(params.window > 0, "window must be positive");
        assert!(params.min_size > 0, "min_size must be positive");
        assert!(
            params.min_size <= params.max_size,
            "min_size must be <= max_size"
        );
        Self { params }
    }
}

impl Chunker for CdcChunker {
    /// Scan for cut points without materializing a ring buffer.
    ///
    /// Equivalent to rolling a fresh [`RabinHasher`] from every chunk
    /// start (the reference loop pinned by
    /// `optimized_scan_matches_reference_hasher_loop`), but exploits that
    /// the hash only depends on the trailing `window` bytes: the first
    /// `min_size - window` bytes of each chunk are skipped without
    /// hashing, and the steady-state loop reads the outgoing byte
    /// straight from the buffer instead of a modulo-indexed ring.
    fn chunks(&self, buf: &[u8]) -> Vec<ChunkRange> {
        let p = self.params;
        let win = p.window;
        // Built once per call: the tables depend only on the window.
        let hasher = RabinHasher::new(win);
        let (push, pop) = (&hasher.push_table, &hasher.pop_table);
        let mut out = Vec::new();
        let mut start = 0usize;
        let len = buf.len();
        while start < len {
            let end_max = (start + p.max_size).min(len);
            // Earliest admissible chunk end. At or past `end_max` the cut
            // is forced (max_size or buffer tail), hash regardless.
            let first_cut = start + p.min_size;
            if first_cut >= end_max {
                out.push(ChunkRange {
                    start,
                    end: end_max,
                });
                start = end_max;
                continue;
            }
            let mut cut = end_max;
            let mut hash = 0u64;
            // Warm-up: fill the window (no outgoing byte yet). Starts
            // late enough that the window is exactly full at `first_cut`.
            let warm_start = first_cut.saturating_sub(win).max(start);
            let fill_end = (warm_start + win).min(end_max);
            let mut i = warm_start;
            let mut found = false;
            while i < fill_end {
                hash = shift8_mod(hash, push) ^ u64::from(buf[i]);
                hash = poly_mod_step(hash);
                i += 1;
                if i >= first_cut && (hash & p.mask) == p.mask_value {
                    cut = i;
                    found = true;
                    break;
                }
            }
            // Steady state: window full, every position is admissible
            // (`i >= warm_start + win >= first_cut`).
            while !found && i < end_max {
                hash ^= pop[buf[i - win] as usize];
                hash = shift8_mod(hash, push) ^ u64::from(buf[i]);
                hash = poly_mod_step(hash);
                i += 1;
                if (hash & p.mask) == p.mask_value {
                    cut = i;
                    break;
                }
            }
            out.push(ChunkRange { start, end: cut });
            start = cut;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_hash_matches_fresh_hash_of_window() {
        // After rolling a long stream, the hash must equal the hash of just
        // the final `window` bytes — the defining property of a rolling hash.
        let data: Vec<u8> = (0..1000u32)
            .map(|i| (i.wrapping_mul(37) % 256) as u8)
            .collect();
        let window = 16;
        let mut a = RabinHasher::new(window);
        for &b in &data {
            a.roll(b);
        }
        let mut b = RabinHasher::new(window);
        for &x in &data[data.len() - window..] {
            b.roll(x);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn hash_stays_below_poly_degree() {
        let mut h = RabinHasher::new(8);
        for i in 0..10_000u32 {
            let v = h.roll((i % 256) as u8);
            assert!(v < (1 << POLY_DEGREE));
        }
    }

    #[test]
    fn cdc_tiles_buffer_exactly() {
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let chunks = CdcChunker::default().chunks(&data);
        assert!(!chunks.is_empty());
        assert_eq!(chunks[0].start, 0);
        assert_eq!(chunks.last().unwrap().end, data.len());
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn cdc_respects_min_and_max_sizes() {
        let data: Vec<u8> = (0..200_000u32)
            .map(|i| (i.wrapping_mul(0x9E3779B9) >> 11) as u8)
            .collect();
        let params = RabinParams {
            window: 32,
            mask: (1 << 8) - 1,
            mask_value: (1 << 8) - 1,
            min_size: 512,
            max_size: 4096,
        };
        let chunks = CdcChunker::new(params).chunks(&data);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= 4096, "chunk {i} too big: {}", c.len());
            if i + 1 != chunks.len() {
                assert!(c.len() >= 512, "chunk {i} too small: {}", c.len());
            }
        }
    }

    #[test]
    fn cdc_boundaries_are_content_defined() {
        // Shift-resistance: inserting a prefix realigns boundaries after the
        // insertion point, so most chunk *contents* reappear.
        let base: Vec<u8> = (0..60_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
            .collect();
        let mut shifted = vec![0xAB; 137];
        shifted.extend_from_slice(&base);
        let chunker = CdcChunker::default();
        let set_a: std::collections::HashSet<Vec<u8>> = chunker
            .chunks(&base)
            .iter()
            .map(|c| c.slice(&base).to_vec())
            .collect();
        let chunks_b = chunker.chunks(&shifted);
        let reused = chunks_b
            .iter()
            .filter(|c| set_a.contains(c.slice(&shifted)))
            .count();
        // At least half the shifted file's chunks must literally reappear.
        assert!(
            reused * 2 >= chunks_b.len(),
            "only {reused}/{} chunks reused after shift",
            chunks_b.len()
        );
    }

    #[test]
    fn cdc_empty_input() {
        assert!(CdcChunker::default().chunks(&[]).is_empty());
    }

    #[test]
    fn optimized_scan_matches_reference_hasher_loop() {
        // The production scan skips min-size prefixes and reads the
        // outgoing byte straight from the buffer; this reference rolls a
        // fresh RabinHasher over every byte of every chunk. Both must cut
        // identically — the cut points are on-disk format.
        fn reference_chunks(p: RabinParams, buf: &[u8]) -> Vec<ChunkRange> {
            let mut out = Vec::new();
            let mut hasher = RabinHasher::new(p.window);
            let mut start = 0usize;
            for i in 0..buf.len() {
                let h = hasher.roll(buf[i]);
                let size = i + 1 - start;
                if (size >= p.min_size && (h & p.mask) == p.mask_value) || size >= p.max_size {
                    out.push(ChunkRange { start, end: i + 1 });
                    start = i + 1;
                    hasher.reset();
                }
            }
            if start < buf.len() {
                out.push(ChunkRange {
                    start,
                    end: buf.len(),
                });
            }
            out
        }
        let data: Vec<u8> = (0..300_001u32) // odd length: exercise the tail
            .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
            .collect();
        for params in [
            RabinParams::default(),
            // min_size smaller than the window: partial-window cuts.
            RabinParams {
                window: 32,
                mask: (1 << 6) - 1,
                mask_value: (1 << 6) - 1,
                min_size: 16,
                max_size: 1024,
            },
            // min_size == max_size: every cut is forced.
            RabinParams {
                window: 8,
                mask: 3,
                mask_value: 3,
                min_size: 128,
                max_size: 128,
            },
        ] {
            assert_eq!(
                CdcChunker::new(params).chunks(&data),
                reference_chunks(params, &data),
                "optimized scan diverged for {params:?}"
            );
        }
    }

    #[test]
    fn cdc_uniform_data_cuts_at_max_size() {
        // All-zero data never matches a nontrivial mask value, so every cut
        // comes from max_size.
        let data = vec![0u8; 100_000];
        let params = RabinParams {
            window: 48,
            mask: 0xff,
            mask_value: 0xff,
            min_size: 256,
            max_size: 1024,
        };
        let chunks = CdcChunker::new(params).chunks(&data);
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.len(), 1024);
        }
    }

    #[test]
    #[should_panic(expected = "min_size must be <= max_size")]
    fn bad_params_panic() {
        CdcChunker::new(RabinParams {
            window: 8,
            mask: 1,
            mask_value: 1,
            min_size: 10,
            max_size: 5,
        });
    }
}
