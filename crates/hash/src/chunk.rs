//! Chunking of rank-local datasets.
//!
//! The paper splits the dataset into "small fixed sized chunks" whose size
//! matches the system page size (4 KiB) because its AC-FTE demonstrator
//! captures memory pages. The library is explicitly meant to "be easily
//! adapted to work with arbitrarily large chunk sizes", so the chunker is a
//! trait with a fixed-size implementation here and a content-defined one in
//! [`crate::rabin`].

/// Default chunk size: one 4 KiB memory page, as in the paper.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// A half-open byte range `[start, end)` identifying one chunk of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRange {
    /// Byte offset of the chunk start.
    pub start: usize,
    /// Byte offset one past the chunk end.
    pub end: usize,
}

impl ChunkRange {
    /// Chunk length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the range is empty (never produced by the chunkers).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Borrow the chunk bytes out of the backing buffer.
    pub fn slice<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[self.start..self.end]
    }
}

/// Splits a buffer into chunk ranges.
pub trait Chunker {
    /// Produce the chunk ranges covering `buf` exactly, in order.
    fn chunks(&self, buf: &[u8]) -> Vec<ChunkRange>;
}

/// Fixed-size chunking (paper default, chunk == memory page).
#[derive(Debug, Clone, Copy)]
pub struct FixedChunker {
    /// Chunk size in bytes; the last chunk may be shorter.
    pub chunk_size: usize,
}

impl Default for FixedChunker {
    fn default() -> Self {
        Self {
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl FixedChunker {
    /// Fixed-size chunker with the given chunk size.
    ///
    /// # Panics
    /// If `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Self { chunk_size }
    }

    /// Number of chunks a buffer of `len` bytes yields.
    pub fn chunk_count(&self, len: usize) -> usize {
        len.div_ceil(self.chunk_size)
    }
}

impl Chunker for FixedChunker {
    fn chunks(&self, buf: &[u8]) -> Vec<ChunkRange> {
        chunk_ranges(buf.len(), self.chunk_size)
    }
}

/// Fixed-size chunk ranges covering `len` bytes.
pub fn chunk_ranges(len: usize, chunk_size: usize) -> Vec<ChunkRange> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(chunk_size));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_size).min(len);
        out.push(ChunkRange { start, end });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple() {
        let r = chunk_ranges(8192, 4096);
        assert_eq!(
            r,
            vec![
                ChunkRange {
                    start: 0,
                    end: 4096
                },
                ChunkRange {
                    start: 4096,
                    end: 8192
                }
            ]
        );
    }

    #[test]
    fn tail_chunk_is_short() {
        let r = chunk_ranges(10, 4);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2], ChunkRange { start: 8, end: 10 });
        assert_eq!(r[2].len(), 2);
        assert!(!r[2].is_empty());
    }

    #[test]
    fn empty_buffer_yields_no_chunks() {
        assert!(chunk_ranges(0, 4096).is_empty());
    }

    #[test]
    fn ranges_tile_the_buffer() {
        for len in [1usize, 5, 4095, 4096, 4097, 12_288] {
            let r = chunk_ranges(len, 4096);
            assert_eq!(r[0].start, 0);
            assert_eq!(r.last().unwrap().end, len);
            for w in r.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous tiling");
            }
        }
    }

    #[test]
    fn fixed_chunker_trait_and_count() {
        let c = FixedChunker::new(4);
        let buf = [0u8; 10];
        assert_eq!(c.chunks(&buf).len(), 3);
        assert_eq!(c.chunk_count(10), 3);
        assert_eq!(c.chunk_count(0), 0);
        assert_eq!(c.chunk_count(8), 2);
    }

    #[test]
    fn default_is_page_sized() {
        assert_eq!(FixedChunker::default().chunk_size, 4096);
    }

    #[test]
    fn slice_borrows_correct_bytes() {
        let buf: Vec<u8> = (0..10).collect();
        let r = ChunkRange { start: 4, end: 8 };
        assert_eq!(r.slice(&buf), &[4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_size_panics() {
        FixedChunker::new(0);
    }
}
