//! Chunking of rank-local datasets.
//!
//! The paper splits the dataset into "small fixed sized chunks" whose size
//! matches the system page size (4 KiB) because its AC-FTE demonstrator
//! captures memory pages. The library is explicitly meant to "be easily
//! adapted to work with arbitrarily large chunk sizes", so the chunker is a
//! trait with a fixed-size implementation here and a content-defined one in
//! [`crate::rabin`].

use super::gear::{GearChunker, GearParams};
use super::rabin::{CdcChunker, RabinParams};

/// Default chunk size: one 4 KiB memory page, as in the paper.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// A half-open byte range `[start, end)` identifying one chunk of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRange {
    /// Byte offset of the chunk start.
    pub start: usize,
    /// Byte offset one past the chunk end.
    pub end: usize,
}

impl ChunkRange {
    /// Chunk length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the range is empty (never produced by the chunkers).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Borrow the chunk bytes out of the backing buffer.
    pub fn slice<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[self.start..self.end]
    }
}

/// Splits a buffer into chunk ranges.
pub trait Chunker {
    /// Produce the chunk ranges covering `buf` exactly, in order.
    fn chunks(&self, buf: &[u8]) -> Vec<ChunkRange>;
}

/// Fixed-size chunking (paper default, chunk == memory page).
#[derive(Debug, Clone, Copy)]
pub struct FixedChunker {
    /// Chunk size in bytes; the last chunk may be shorter.
    pub chunk_size: usize,
}

impl Default for FixedChunker {
    fn default() -> Self {
        Self {
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl FixedChunker {
    /// Fixed-size chunker with the given chunk size.
    ///
    /// # Panics
    /// If `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Self { chunk_size }
    }

    /// Number of chunks a buffer of `len` bytes yields.
    pub fn chunk_count(&self, len: usize) -> usize {
        len.div_ceil(self.chunk_size)
    }
}

impl Chunker for FixedChunker {
    fn chunks(&self, buf: &[u8]) -> Vec<ChunkRange> {
        chunk_ranges(buf.len(), self.chunk_size)
    }
}

/// Which chunking algorithm a dump runs, with its parameters.
///
/// This is the value that travels through `DumpConfig`: a small `Copy`
/// descriptor rather than a trait object, so configs stay `Copy` and the
/// choice can be compared, logged, and validated before any buffer is
/// touched. [`ChunkerKind::resolve`] turns it into a runnable
/// [`ResolvedChunker`] at dump time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ChunkerKind {
    /// Fixed-size chunking at the config's `chunk_size` (paper default).
    #[default]
    Fixed,
    /// Rabin rolling-hash CDC ([`crate::rabin`]).
    Rabin(RabinParams),
    /// Gear-hash CDC with SeqCDC-style skipping ([`crate::gear`]).
    Gear(GearParams),
}

impl ChunkerKind {
    /// Short label for logs, bench reports, and test names.
    pub fn label(&self) -> &'static str {
        match self {
            ChunkerKind::Fixed => "fixed",
            ChunkerKind::Rabin(_) => "rabin",
            ChunkerKind::Gear(_) => "gear",
        }
    }

    /// Check the embedded parameters, reporting the first violation.
    /// `Fixed` is always valid here — its chunk size lives in the dump
    /// config and is validated there.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            ChunkerKind::Fixed => Ok(()),
            ChunkerKind::Rabin(p) => {
                if p.window == 0 {
                    Err("rabin window must be positive")
                } else if p.min_size == 0 {
                    Err("rabin min_size must be positive")
                } else if p.min_size > p.max_size {
                    Err("rabin min_size must be <= max_size")
                } else {
                    Ok(())
                }
            }
            ChunkerKind::Gear(p) => p.validate(),
        }
    }

    /// Largest chunk this kind can emit, given the config's fixed chunk
    /// size. Sizes the fixed exchange-record cell (`record_size`) so one
    /// cell always fits any chunk payload.
    pub fn max_chunk_len(&self, fixed_size: usize) -> usize {
        match self {
            ChunkerKind::Fixed => fixed_size,
            ChunkerKind::Rabin(p) => p.max_size,
            ChunkerKind::Gear(p) => p.max_size,
        }
    }

    /// Instantiate the runnable chunker. `fixed_size` is the config's
    /// `chunk_size`, used only by [`ChunkerKind::Fixed`].
    ///
    /// # Panics
    /// If the parameters are invalid (call [`ChunkerKind::validate`]
    /// first) or `fixed_size` is zero for the fixed kind.
    pub fn resolve(&self, fixed_size: usize) -> ResolvedChunker {
        match self {
            ChunkerKind::Fixed => ResolvedChunker::Fixed(FixedChunker::new(fixed_size)),
            ChunkerKind::Rabin(p) => ResolvedChunker::Rabin(CdcChunker::new(*p)),
            ChunkerKind::Gear(p) => ResolvedChunker::Gear(GearChunker::new(*p)),
        }
    }
}

/// A [`ChunkerKind`] instantiated into a runnable chunker (enum dispatch
/// keeps the dump path free of boxing).
#[derive(Debug, Clone, Copy)]
pub enum ResolvedChunker {
    /// Fixed-size chunking.
    Fixed(FixedChunker),
    /// Rabin CDC.
    Rabin(CdcChunker),
    /// Gear CDC.
    Gear(GearChunker),
}

impl Chunker for ResolvedChunker {
    fn chunks(&self, buf: &[u8]) -> Vec<ChunkRange> {
        match self {
            ResolvedChunker::Fixed(c) => c.chunks(buf),
            ResolvedChunker::Rabin(c) => c.chunks(buf),
            ResolvedChunker::Gear(c) => c.chunks(buf),
        }
    }
}

/// Fixed-size chunk ranges covering `len` bytes.
pub fn chunk_ranges(len: usize, chunk_size: usize) -> Vec<ChunkRange> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(chunk_size));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_size).min(len);
        out.push(ChunkRange { start, end });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple() {
        let r = chunk_ranges(8192, 4096);
        assert_eq!(
            r,
            vec![
                ChunkRange {
                    start: 0,
                    end: 4096
                },
                ChunkRange {
                    start: 4096,
                    end: 8192
                }
            ]
        );
    }

    #[test]
    fn tail_chunk_is_short() {
        let r = chunk_ranges(10, 4);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2], ChunkRange { start: 8, end: 10 });
        assert_eq!(r[2].len(), 2);
        assert!(!r[2].is_empty());
    }

    #[test]
    fn empty_buffer_yields_no_chunks() {
        assert!(chunk_ranges(0, 4096).is_empty());
    }

    #[test]
    fn ranges_tile_the_buffer() {
        for len in [1usize, 5, 4095, 4096, 4097, 12_288] {
            let r = chunk_ranges(len, 4096);
            assert_eq!(r[0].start, 0);
            assert_eq!(r.last().unwrap().end, len);
            for w in r.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous tiling");
            }
        }
    }

    #[test]
    fn fixed_chunker_trait_and_count() {
        let c = FixedChunker::new(4);
        let buf = [0u8; 10];
        assert_eq!(c.chunks(&buf).len(), 3);
        assert_eq!(c.chunk_count(10), 3);
        assert_eq!(c.chunk_count(0), 0);
        assert_eq!(c.chunk_count(8), 2);
    }

    #[test]
    fn default_is_page_sized() {
        assert_eq!(FixedChunker::default().chunk_size, 4096);
    }

    #[test]
    fn slice_borrows_correct_bytes() {
        let buf: Vec<u8> = (0..10).collect();
        let r = ChunkRange { start: 4, end: 8 };
        assert_eq!(r.slice(&buf), &[4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_size_panics() {
        FixedChunker::new(0);
    }

    #[test]
    fn kind_labels_and_default() {
        assert_eq!(ChunkerKind::default(), ChunkerKind::Fixed);
        assert_eq!(ChunkerKind::Fixed.label(), "fixed");
        assert_eq!(ChunkerKind::Rabin(RabinParams::default()).label(), "rabin");
        assert_eq!(ChunkerKind::Gear(GearParams::default()).label(), "gear");
    }

    #[test]
    fn kind_validate_catches_bad_params() {
        assert!(ChunkerKind::Fixed.validate().is_ok());
        assert!(ChunkerKind::Rabin(RabinParams::default())
            .validate()
            .is_ok());
        assert!(ChunkerKind::Gear(GearParams::default()).validate().is_ok());
        let bad_rabin = RabinParams {
            min_size: 10,
            max_size: 5,
            ..RabinParams::default()
        };
        assert!(ChunkerKind::Rabin(bad_rabin).validate().is_err());
        let bad_gear = GearParams {
            min_size: 0,
            avg_size: 64,
            max_size: 128,
        };
        assert!(ChunkerKind::Gear(bad_gear).validate().is_err());
    }

    #[test]
    fn kind_max_chunk_len_sizes_the_record_cell() {
        assert_eq!(ChunkerKind::Fixed.max_chunk_len(4096), 4096);
        let r = RabinParams::default();
        assert_eq!(ChunkerKind::Rabin(r).max_chunk_len(4096), r.max_size);
        let g = GearParams::default();
        assert_eq!(ChunkerKind::Gear(g).max_chunk_len(4096), g.max_size);
    }

    #[test]
    fn resolved_chunkers_match_their_direct_implementations() {
        let buf: Vec<u8> = (0..20_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        assert_eq!(
            ChunkerKind::Fixed.resolve(4096).chunks(&buf),
            FixedChunker::new(4096).chunks(&buf)
        );
        assert_eq!(
            ChunkerKind::Rabin(RabinParams::default())
                .resolve(4096)
                .chunks(&buf),
            CdcChunker::default().chunks(&buf)
        );
        assert_eq!(
            ChunkerKind::Gear(GearParams::default())
                .resolve(4096)
                .chunks(&buf),
            GearChunker::default().chunks(&buf)
        );
    }
}
