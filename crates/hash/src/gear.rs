//! Gear-based content-defined chunking (the fast CDC family).
//!
//! Rabin CDC ([`crate::rabin`]) pays table lookups *and* a ring-buffer
//! pop per byte. The gear construction (Ddelta/FastCDC lineage, and the
//! skip-and-scan structure of SeqCDC, arXiv 2505.21194) drops the explicit
//! window: the hash is
//!
//! ```text
//! h = (h << 1) + GEAR[byte]
//! ```
//!
//! so each byte's contribution shifts out of the top after 64 steps — an
//! implicit 64-byte window with one add and one shift per byte. Cut points
//! are declared where the *high* bits of `h` are all zero (the high bits
//! mix the most history; the low bits depend only on the last few bytes).
//!
//! Two SeqCDC-style accelerations keep the scan fast:
//!
//! * **min-size skipping** — no hashing inside the first `min_size` bytes
//!   of a chunk; the hash warms up from zero at the skip point (its
//!   effective window is entirely inside the region being scanned, so cut
//!   points remain content-defined),
//! * **a branch-light unrolled inner loop** — four hash steps per
//!   iteration with one combined cut test (`min` of the masked lanes is
//!   zero iff any lane matched), the scalar analogue of SeqCDC's
//!   vectorized predicate: the hot path is straight-line table adds, and
//!   the branch is taken once per ~`avg_size` bytes.

use super::chunk::{ChunkRange, Chunker};

/// Parameters for gear-based CDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GearParams {
    /// Minimum chunk size; the scanner skips this many bytes of every
    /// chunk without hashing (SeqCDC's "skipping" phase).
    pub min_size: usize,
    /// Expected chunk size *beyond* `min_size`; must be a power of two.
    /// The cut mask keeps `log2(avg_size)` high bits, so the expected
    /// chunk length is `min_size + avg_size`.
    pub avg_size: usize,
    /// Maximum chunk size (forces a cut on mask-dodging data).
    pub max_size: usize,
}

impl Default for GearParams {
    fn default() -> Self {
        // Expected chunk ~1 KiB + 4 KiB mask target, same scale as the
        // paper's 4 KiB page and the Rabin defaults.
        Self {
            min_size: 1 << 10,
            avg_size: 1 << 12,
            max_size: 1 << 15,
        }
    }
}

impl GearParams {
    /// Cut mask: the top `log2(avg_size)` bits of the hash. A cut is
    /// declared where `h & mask == 0`.
    #[inline]
    pub fn mask(&self) -> u64 {
        let bits = self.avg_size.trailing_zeros();
        debug_assert!(self.avg_size.is_power_of_two());
        ((1u64 << bits) - 1) << (64 - bits)
    }

    /// Check parameter invariants, reporting the first violation.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.min_size == 0 {
            return Err("gear min_size must be positive");
        }
        if !self.avg_size.is_power_of_two() || self.avg_size < 2 {
            return Err("gear avg_size must be a power of two >= 2");
        }
        if self.avg_size > (1 << 48) {
            return Err("gear avg_size too large for the cut mask");
        }
        if self.min_size > self.max_size {
            return Err("gear min_size must be <= max_size");
        }
        Ok(())
    }
}

/// Build the 256-entry gear table at compile time from a fixed splitmix64
/// stream. The table is part of the on-disk format: changing it moves
/// every cut point and invalidates stored fingerprints, which is exactly
/// what the golden-vector test in `tests/chunking.rs` guards.
const fn build_gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state: u64 = 0x7265_706c_6964_6564; // b"replided"
    let mut i = 0;
    while i < 256 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        table[i] = z;
        i += 1;
    }
    table
}

/// Per-byte mixing table; see [`build_gear_table`].
pub(crate) const GEAR_TABLE: [u64; 256] = build_gear_table();

/// Content-defined chunker on the gear rolling hash.
#[derive(Debug, Clone, Copy, Default)]
pub struct GearChunker {
    /// Cut-point and size parameters.
    pub params: GearParams,
}

impl GearChunker {
    /// Chunker with explicit parameters.
    ///
    /// # Panics
    /// If the parameters violate [`GearParams::validate`].
    pub fn new(params: GearParams) -> Self {
        if let Err(why) = params.validate() {
            panic!("{why}");
        }
        Self { params }
    }

    /// Find the cut point for the chunk starting at `start`: the end
    /// offset (exclusive) of the chunk, in buffer coordinates.
    #[inline]
    fn cut_point(&self, buf: &[u8], start: usize) -> usize {
        let p = self.params;
        let n = buf.len();
        let hard_end = n.min(start + p.max_size);
        let scan_from = start + p.min_size;
        if scan_from >= hard_end {
            // Remainder fits inside min_size (tail) or min == max.
            return hard_end;
        }
        let mask = p.mask();
        let region = &buf[scan_from..hard_end];
        let mut h: u64 = 0;

        // Unrolled hot loop: four hash steps, one combined test. The
        // minimum of the masked lanes is zero iff any lane hit the mask,
        // so the common case is branch-free straight-line code.
        let mut i = 0;
        let quads = region.len() & !3;
        while i < quads {
            let h0 = (h << 1).wrapping_add(GEAR_TABLE[region[i] as usize]);
            let h1 = (h0 << 1).wrapping_add(GEAR_TABLE[region[i + 1] as usize]);
            let h2 = (h1 << 1).wrapping_add(GEAR_TABLE[region[i + 2] as usize]);
            let h3 = (h2 << 1).wrapping_add(GEAR_TABLE[region[i + 3] as usize]);
            let hit = (h0 & mask).min(h1 & mask).min(h2 & mask).min(h3 & mask);
            if hit == 0 {
                // Rare path: resolve which lane cut first.
                let lanes = [h0, h1, h2, h3];
                for (lane, &hv) in lanes.iter().enumerate() {
                    if hv & mask == 0 {
                        return scan_from + i + lane + 1;
                    }
                }
                unreachable!("combined test hit but no lane matched");
            }
            h = h3;
            i += 4;
        }
        for (off, &b) in region[quads..].iter().enumerate() {
            h = (h << 1).wrapping_add(GEAR_TABLE[b as usize]);
            if h & mask == 0 {
                return scan_from + quads + off + 1;
            }
        }
        hard_end
    }
}

impl Chunker for GearChunker {
    fn chunks(&self, buf: &[u8]) -> Vec<ChunkRange> {
        let estimate = buf.len() / (self.params.min_size + self.params.avg_size) + 1;
        let mut out = Vec::with_capacity(estimate);
        let mut start = 0;
        while start < buf.len() {
            let end = self.cut_point(buf, start);
            out.push(ChunkRange { start, end });
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(len: usize) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
            .collect()
    }

    #[test]
    fn gear_tiles_buffer_exactly() {
        let data = noisy(100_000);
        let chunks = GearChunker::default().chunks(&data);
        assert!(!chunks.is_empty());
        assert_eq!(chunks[0].start, 0);
        assert_eq!(chunks.last().unwrap().end, data.len());
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn gear_respects_min_and_max_sizes() {
        let data = noisy(200_000);
        let params = GearParams {
            min_size: 512,
            avg_size: 1024,
            max_size: 4096,
        };
        let chunks = GearChunker::new(params).chunks(&data);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= 4096, "chunk {i} too big: {}", c.len());
            if i + 1 != chunks.len() {
                assert!(c.len() >= 512, "chunk {i} too small: {}", c.len());
            }
        }
    }

    #[test]
    fn gear_is_deterministic() {
        let data = noisy(50_000);
        let a = GearChunker::default().chunks(&data);
        let b = GearChunker::default().chunks(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn gear_boundaries_are_content_defined() {
        let base = noisy(60_000);
        let mut shifted = vec![0xAB; 137];
        shifted.extend_from_slice(&base);
        let chunker = GearChunker::default();
        let set_a: std::collections::HashSet<Vec<u8>> = chunker
            .chunks(&base)
            .iter()
            .map(|c| c.slice(&base).to_vec())
            .collect();
        let chunks_b = chunker.chunks(&shifted);
        let reused = chunks_b
            .iter()
            .filter(|c| set_a.contains(c.slice(&shifted)))
            .count();
        assert!(
            reused * 2 >= chunks_b.len(),
            "only {reused}/{} chunks reused after shift",
            chunks_b.len()
        );
    }

    #[test]
    fn gear_empty_input() {
        assert!(GearChunker::default().chunks(&[]).is_empty());
    }

    #[test]
    fn gear_uniform_data_cuts_at_max_size() {
        // Constant data: the hash saturates to a fixed orbit whose masked
        // high bits never hit zero for this table, so max_size governs.
        let data = vec![0u8; 100_000];
        let params = GearParams {
            min_size: 256,
            avg_size: 512,
            max_size: 1024,
        };
        let chunks = GearChunker::new(params).chunks(&data);
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.len(), 1024);
        }
    }

    #[test]
    fn unrolled_loop_matches_reference_scalar_scan() {
        // The quad-unrolled cut search must find exactly the cut a naive
        // byte-at-a-time scan finds.
        let data = noisy(30_011); // odd length exercises the tail loop
        let params = GearParams {
            min_size: 64,
            avg_size: 256,
            max_size: 2048,
        };
        let got = GearChunker::new(params).chunks(&data);
        // Reference implementation: no unrolling, no skipping shortcuts.
        let mask = params.mask();
        let mut want = Vec::new();
        let mut start = 0;
        while start < data.len() {
            let hard_end = data.len().min(start + params.max_size);
            let mut end = hard_end;
            let mut h: u64 = 0;
            let scan_from = (start + params.min_size).min(hard_end);
            for (off, &b) in data[scan_from..hard_end].iter().enumerate() {
                h = (h << 1).wrapping_add(GEAR_TABLE[b as usize]);
                if h & mask == 0 {
                    end = scan_from + off + 1;
                    break;
                }
            }
            want.push(ChunkRange { start, end });
            start = end;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn gear_table_is_frozen() {
        // Spot-check the table; a change here moves every cut point and
        // invalidates stored fingerprints.
        assert_eq!(GEAR_TABLE.len(), 256);
        let mut distinct = GEAR_TABLE.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 256, "table entries must be distinct");
    }

    #[test]
    #[should_panic(expected = "min_size must be <= max_size")]
    fn bad_params_panic() {
        GearChunker::new(GearParams {
            min_size: 10,
            avg_size: 8,
            max_size: 5,
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_avg_panics() {
        GearChunker::new(GearParams {
            min_size: 1,
            avg_size: 3,
            max_size: 10,
        });
    }
}
