//! Paper-scale experiment scenarios.
//!
//! Each scenario describes one of the paper's two applications at testbed
//! scale: dataset volume per process, checkpoint count, the process counts
//! of Table I, and a baseline (no-checkpoint) completion-time model.
//!
//! The baseline column of Table I is *application* performance — an
//! environment input, not the paper's contribution — so it is modeled as
//! `a + c·√p` calibrated against the paper's reported baselines (the two
//! anchor points per application are listed below; the √p form tracks the
//! intermediate rows within ~15 %). All checkpoint-overhead numbers, the
//! actual subject of the evaluation, come from measured traffic through
//! the [`crate::model::ClusterModel`].

/// Baseline completion-time model `a + c·√p` (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineModel {
    /// Fixed component.
    pub a: f64,
    /// √p coefficient.
    pub c: f64,
}

impl BaselineModel {
    /// Baseline completion time for `p` processes.
    pub fn time(&self, p: u32) -> f64 {
        self.a + self.c * f64::from(p).sqrt()
    }
}

/// One application at paper scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppScenario {
    /// Application name as used in the paper.
    pub name: &'static str,
    /// Checkpoint volume per process at paper scale, bytes.
    pub bytes_per_rank: u64,
    /// Checkpoints taken during the run (HPCCG: 1 at iteration 100 of
    /// 127; CM1: every 30 of 70 time steps → 2).
    pub checkpoints: u32,
    /// Process counts of the Table I rows.
    pub proc_counts: [u32; 4],
    /// Baseline (no checkpointing) completion-time model.
    pub baseline: BaselineModel,
}

/// HPCCG at paper scale: 150³ sub-block ≈ 1.5 GB per process; baselines
/// anchored at 82 s (1 proc) and 279 s (408 procs).
pub const HPCCG: AppScenario = AppScenario {
    name: "HPCCG",
    bytes_per_rank: 1_500_000_000,
    checkpoints: 1,
    proc_counts: [1, 64, 196, 408],
    baseline: BaselineModel { a: 71.74, c: 10.26 },
};

/// CM1 at paper scale: 200×200 subdomain ≈ 800 MB per process (≈ 500 MB
/// hot); baselines anchored at 178 s (12 procs) and 382 s (408 procs).
pub const CM1: AppScenario = AppScenario {
    name: "CM1",
    bytes_per_rank: 800_000_000,
    checkpoints: 2,
    proc_counts: [12, 120, 264, 408],
    baseline: BaselineModel { a: 135.8, c: 12.19 },
};

impl AppScenario {
    /// Scale factor from a measured per-rank volume to paper scale.
    pub fn scale_from(&self, measured_bytes_per_rank: u64) -> f64 {
        assert!(
            measured_bytes_per_rank > 0,
            "measured volume must be positive"
        );
        self.bytes_per_rank as f64 / measured_bytes_per_rank as f64
    }

    /// Completion time given a per-checkpoint dump time.
    pub fn completion_time(&self, p: u32, dump_seconds: f64) -> f64 {
        self.baseline.time(p) + f64::from(self.checkpoints) * dump_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_anchors_match_paper() {
        assert!((HPCCG.baseline.time(1) - 82.0).abs() < 1.0);
        assert!((HPCCG.baseline.time(408) - 279.0).abs() < 5.0);
        assert!((CM1.baseline.time(12) - 178.0).abs() < 1.0);
        assert!((CM1.baseline.time(408) - 382.0).abs() < 5.0);
    }

    #[test]
    fn baseline_intermediate_rows_are_close() {
        // The √p model should land within ~20 % of the paper's middle rows.
        for (p, paper) in [(64u32, 152.0f64), (196, 186.0)] {
            let model = HPCCG.baseline.time(p);
            assert!(
                (model - paper).abs() / paper < 0.2,
                "HPCCG p={p}: {model} vs {paper}"
            );
        }
        for (p, paper) in [(120u32, 259.0f64), (264, 366.0)] {
            let model = CM1.baseline.time(p);
            assert!(
                (model - paper).abs() / paper < 0.2,
                "CM1 p={p}: {model} vs {paper}"
            );
        }
    }

    #[test]
    fn scale_factor_inflates_to_paper_volume() {
        let s = HPCCG.scale_from(1_500_000);
        assert!((s - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn completion_adds_checkpoint_cost() {
        let t0 = CM1.completion_time(408, 0.0);
        let t1 = CM1.completion_time(408, 50.0);
        assert!((t1 - t0 - 100.0).abs() < 1e-9, "CM1 takes 2 checkpoints");
    }

    #[test]
    #[should_panic(expected = "measured volume must be positive")]
    fn zero_measured_volume_panics() {
        HPCCG.scale_from(0);
    }
}
