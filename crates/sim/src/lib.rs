//! Analytical cluster cost model for the `replidedup` evaluation.
//!
//! Experiments run in-process at MiB scale; the paper ran on 34 nodes at
//! GB scale. This crate bridges the two: [`DumpMeasurement`] captures the
//! exact byte counts a dump produced, [`ClusterModel`] converts them into
//! Shamrock-testbed phase times (NIC/HDD/CPU contention included), and
//! [`scenario`] holds the paper-scale application parameters (volumes,
//! checkpoint counts, baseline completion models) behind Table I and the
//! time figures.

pub mod model;
pub mod scenario;

pub use model::{ClusterModel, DumpMeasurement, PhaseTimes, TrafficPrediction};
pub use scenario::{AppScenario, BaselineModel, CM1, HPCCG};
