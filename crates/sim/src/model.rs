//! Analytical cluster cost model.
//!
//! The paper's timings come from the Shamrock testbed: 34 nodes, Gigabit
//! Ethernet, one 1 TB HDD per node, Intel Xeon X5670 (6 cores / 12 HW
//! threads), 12 ranks per node. This reproduction runs ranks as threads
//! and *measures* exact byte counts per rank; this module converts those
//! measurements into cluster-scale phase times using a bulk-synchronous
//! resource model:
//!
//! ```text
//! T_dump = max_r(hash_r) + T_reduce + max_node(exchange) + max_node(write)
//! ```
//!
//! Each phase is separated by a collective barrier in the implementation,
//! so phase times add and within a phase the slowest resource dominates.
//! Node-level contention is explicit: ranks sharing a node share its NIC
//! and its HDD.
//!
//! Scale inflation: experiments run with MiB-scale buffers; the model
//! multiplies byte quantities by `scale` to reach the paper's GB-scale
//! datasets (dedup *ratios* are scale-free, which is what the measurement
//! provides). The reduction phase is capped by the `F` threshold exactly as
//! the real algorithm caps it — the one place where volume does not scale
//! linearly.

use replidedup_core::WorldDumpStats;

/// Hardware/topology parameters of the modeled cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Ranks per node (paper: 12).
    pub ranks_per_node: u32,
    /// Per-node NIC bandwidth, bytes/s each direction (GigE ≈ 112 MB/s
    /// effective after protocol overhead).
    pub nic_bandwidth: f64,
    /// Per-message network latency in seconds.
    pub nic_latency: f64,
    /// Per-node local device write bandwidth, bytes/s (2011-era HDD ≈
    /// 100 MB/s sequential).
    pub hdd_write_bandwidth: f64,
    /// Per-core SHA-1 throughput, bytes/s (Westmere ≈ 300 MB/s).
    pub hash_core_bandwidth: f64,
    /// Physical cores per node (paper: 6; 12 ranks oversubscribe 2×).
    pub cores_per_node: u32,
    /// CPU cost per view entry per merge round, seconds (sort + merge-join
    /// constants).
    pub merge_entry_cost: f64,
}

impl Default for ClusterModel {
    /// Shamrock-calibrated defaults.
    fn default() -> Self {
        Self {
            ranks_per_node: 12,
            nic_bandwidth: 112e6,
            nic_latency: 60e-6,
            hdd_write_bandwidth: 100e6,
            hash_core_bandwidth: 300e6,
            cores_per_node: 6,
            merge_entry_cost: 40e-9,
        }
    }
}

/// Per-phase times of one modeled collective dump, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Chunk fingerprinting.
    pub hash: f64,
    /// Collective fingerprint reduction (allreduce) + load allgather.
    pub reduce: f64,
    /// Single-sided replica exchange.
    pub exchange: f64,
    /// Local device commit.
    pub write: f64,
}

impl PhaseTimes {
    /// End-to-end dump time (phases are barrier-separated).
    pub fn total(&self) -> f64 {
        self.hash + self.reduce + self.exchange + self.write
    }
}

/// Scale- and topology-independent summary of one measured dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DumpMeasurement {
    /// World size the dump ran with.
    pub world: u32,
    /// Effective replication factor.
    pub k: u32,
    /// Reduction threshold `F` in effect.
    pub f_threshold: u64,
    /// Largest per-rank hashed volume.
    pub max_hash_bytes: u64,
    /// Largest per-rank traffic injected into the reduction collective.
    pub max_reduce_bytes: u64,
    /// Entries in the final global view.
    pub view_entries: u64,
    /// Per-rank replica bytes sent, indexed by rank.
    pub sent_bytes: Vec<u64>,
    /// Per-rank replica bytes received, indexed by rank.
    pub recv_bytes: Vec<u64>,
    /// Per-rank bytes written locally, indexed by rank.
    pub written_bytes: Vec<u64>,
}

impl DumpMeasurement {
    /// Extract the model inputs from world-level dump statistics.
    pub fn from_stats(stats: &WorldDumpStats, f_threshold: u64) -> Self {
        Self {
            world: stats.ranks.len() as u32,
            k: stats.ranks.first().map_or(1, |r| r.k),
            f_threshold,
            max_hash_bytes: stats.max_hashed_bytes(),
            max_reduce_bytes: stats.max_reduction_bytes(),
            view_entries: stats.view_entries,
            sent_bytes: stats
                .ranks
                .iter()
                .map(|r| r.bytes_sent_replication)
                .collect(),
            recv_bytes: stats
                .ranks
                .iter()
                .map(|r| r.bytes_received_replication)
                .collect(),
            written_bytes: stats.ranks.iter().map(|r| r.bytes_written_local).collect(),
        }
    }

    /// Reduction rounds of a recursive-doubling allreduce.
    pub fn reduce_rounds(&self) -> u32 {
        if self.world <= 1 {
            0
        } else {
            32 - (self.world - 1).leading_zeros()
        }
    }
}

/// Sum a per-rank byte series into per-node totals.
fn node_sums(per_rank: &[u64], ranks_per_node: u32) -> Vec<u64> {
    let nodes = (per_rank.len() as u32).div_ceil(ranks_per_node.max(1));
    let mut out = vec![0u64; nodes as usize];
    for (r, &b) in per_rank.iter().enumerate() {
        out[r / ranks_per_node as usize] += b;
    }
    out
}

impl ClusterModel {
    /// Per-rank hash throughput when every rank on a node hashes at once.
    fn hash_rate_per_rank(&self, ranks_on_node: u32) -> f64 {
        let busy = ranks_on_node.min(self.ranks_per_node).max(1);
        self.hash_core_bandwidth * f64::from(self.cores_per_node) / f64::from(busy)
    }

    /// Model the phase times of a measured dump inflated by `scale`.
    pub fn dump_time(&self, m: &DumpMeasurement, scale: f64) -> PhaseTimes {
        assert!(scale > 0.0, "scale must be positive");
        let ranks_on_node = m.world.min(self.ranks_per_node);

        // Hashing: rank-local, CPU bound, cores shared within a node.
        let hash = m.max_hash_bytes as f64 * scale / self.hash_rate_per_rank(ranks_on_node);

        // Reduction: per-round traffic grows with the view size but the F
        // threshold caps it; at paper scale the cap binds, at test scale it
        // does not. Entry ≈ fingerprint + freq + rank list.
        let rounds = m.reduce_rounds();
        let entry_bytes = (replidedup_hash::Fingerprint::SIZE + 8 + 8 + 4 * m.k as usize) as f64;
        let cap = f64::from(rounds) * m.f_threshold as f64 * entry_bytes;
        let reduce_bytes = (m.max_reduce_bytes as f64 * scale).min(cap);
        let nic_per_rank = self.nic_bandwidth / f64::from(ranks_on_node);
        let merged_entries = (m.view_entries as f64 * scale).min(m.f_threshold as f64);
        let reduce = reduce_bytes / nic_per_rank
            + f64::from(rounds) * self.nic_latency
            + f64::from(rounds) * merged_entries * self.merge_entry_cost;

        // Exchange: full-duplex NIC shared per node; slowest node dominates.
        let send_nodes = node_sums(&m.sent_bytes, self.ranks_per_node);
        let recv_nodes = node_sums(&m.recv_bytes, self.ranks_per_node);
        let worst_send = send_nodes.iter().copied().max().unwrap_or(0) as f64 * scale;
        let worst_recv = recv_nodes.iter().copied().max().unwrap_or(0) as f64 * scale;
        let exchange = worst_send.max(worst_recv) / self.nic_bandwidth
            + f64::from(m.k.saturating_sub(1)) * self.nic_latency;

        // Write: HDD shared per node; slowest node dominates.
        let write_nodes = node_sums(&m.written_bytes, self.ranks_per_node);
        let worst_write = write_nodes.iter().copied().max().unwrap_or(0) as f64 * scale;
        let write = worst_write / self.hdd_write_bandwidth;

        PhaseTimes {
            hash,
            reduce,
            exchange,
            write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(world: u32, k: u32) -> DumpMeasurement {
        DumpMeasurement {
            world,
            k,
            f_threshold: 1 << 17,
            max_hash_bytes: 100_000_000,
            max_reduce_bytes: 1_000_000,
            view_entries: 10_000,
            sent_bytes: vec![50_000_000; world as usize],
            recv_bytes: vec![50_000_000; world as usize],
            written_bytes: vec![150_000_000; world as usize],
        }
    }

    #[test]
    fn reduce_rounds_is_ceil_log2() {
        let mut m = measurement(1, 3);
        assert_eq!(m.reduce_rounds(), 0);
        for (w, r) in [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (408, 9)] {
            m.world = w;
            assert_eq!(m.reduce_rounds(), r, "world {w}");
        }
    }

    #[test]
    fn node_sums_aggregate() {
        assert_eq!(node_sums(&[1, 2, 3, 4, 5], 2), vec![3, 7, 5]);
        assert_eq!(node_sums(&[7], 12), vec![7]);
    }

    #[test]
    fn phases_scale_linearly_below_the_f_cap() {
        let model = ClusterModel::default();
        let m = measurement(34, 3);
        let t1 = model.dump_time(&m, 1.0);
        let t2 = model.dump_time(&m, 2.0);
        assert!((t2.hash / t1.hash - 2.0).abs() < 1e-9);
        assert!((t2.write / t1.write - 2.0).abs() < 1e-9);
        assert!(t2.exchange > t1.exchange);
    }

    #[test]
    fn f_threshold_caps_reduction_time() {
        let model = ClusterModel::default();
        let m = measurement(408, 3);
        let small = model.dump_time(&m, 1.0);
        let huge = model.dump_time(&m, 1e6);
        let cap_bytes =
            f64::from(m.reduce_rounds()) * (1u64 << 17) as f64 * (20 + 8 + 8 + 12) as f64;
        let nic_per_rank = model.nic_bandwidth / 12.0;
        assert!(
            huge.reduce <= cap_bytes / nic_per_rank + 1.0,
            "cap must bind"
        );
        assert!(huge.reduce > small.reduce);
    }

    #[test]
    fn more_ranks_per_node_means_more_contention() {
        let m = measurement(24, 3);
        let packed = ClusterModel {
            ranks_per_node: 12,
            ..Default::default()
        };
        let sparse = ClusterModel {
            ranks_per_node: 2,
            ..Default::default()
        };
        let tp = packed.dump_time(&m, 1.0);
        let ts = sparse.dump_time(&m, 1.0);
        assert!(
            tp.exchange > ts.exchange,
            "12 ranks sharing a NIC must be slower: {} vs {}",
            tp.exchange,
            ts.exchange
        );
        assert!(tp.write > ts.write);
    }

    #[test]
    fn zero_traffic_costs_only_latency() {
        let model = ClusterModel::default();
        let m = DumpMeasurement {
            world: 4,
            k: 1,
            f_threshold: 1 << 17,
            sent_bytes: vec![0; 4],
            recv_bytes: vec![0; 4],
            written_bytes: vec![0; 4],
            ..Default::default()
        };
        let t = model.dump_time(&m, 1.0);
        assert_eq!(t.hash, 0.0);
        assert!(t.total() < 1e-3, "latency-only dump: {t:?}");
    }

    #[test]
    fn total_adds_phases() {
        let t = PhaseTimes {
            hash: 1.0,
            reduce: 2.0,
            exchange: 3.0,
            write: 4.0,
        };
        assert_eq!(t.total(), 10.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        ClusterModel::default().dump_time(&measurement(2, 2), 0.0);
    }

    #[test]
    fn skewed_load_dominates_exchange() {
        let model = ClusterModel {
            ranks_per_node: 1,
            ..Default::default()
        };
        let mut m = measurement(4, 3);
        m.sent_bytes = vec![10, 10, 10, 10];
        m.recv_bytes = vec![10, 1_000_000_000, 10, 10];
        let t = model.dump_time(&m, 1.0);
        // 1 GB over 112 MB/s ≈ 8.9 s.
        assert!(
            (t.exchange - 1e9 / 112e6).abs() < 0.1,
            "exchange {}",
            t.exchange
        );
    }
}
