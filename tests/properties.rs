//! Property-based integration tests over random workloads, replication
//! factors, chunk sizes and failure patterns.
//!
//! These check the invariants DESIGN.md §6 promises: byte-exact restore
//! round-trips under any strategy and any tolerated failure set, traffic
//! conservation, and dedup accounting consistency. Driven through the
//! `Replicator` session API (the pre-session free functions are gone).

use proptest::prelude::*;
// Our `Strategy` enum shadows proptest's `Strategy` trait from the prelude
// glob; re-import the trait under an alias so combinators resolve.
use proptest::strategy::Strategy as PropStrategy;
use replidedup::apps::SyntheticWorkload;
use replidedup::core::{DumpConfig, Replicator, Strategy, WorldDumpStats};
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

fn arb_strategy() -> impl Strategy_ {
    prop_oneof![
        Just(Strategy::NoDedup),
        Just(Strategy::LocalDedup),
        Just(Strategy::CollDedup),
    ]
}

// proptest's Strategy trait clashes with our Strategy enum name.
trait Strategy_: proptest::strategy::Strategy<Value = Strategy> {}
impl<T: proptest::strategy::Strategy<Value = Strategy>> Strategy_ for T {}

fn arb_workload() -> impl proptest::strategy::Strategy<Value = SyntheticWorkload> {
    (
        1usize..6,
        0usize..6,
        1u32..4,
        0usize..6,
        0usize..4,
        1usize..3,
        any::<u64>(),
    )
        .prop_map(
            |(global, grouped, group_size, private, local_dup, repeat, seed)| SyntheticWorkload {
                chunk_size: 128,
                global_chunks: global,
                grouped_chunks: grouped,
                group_size,
                private_chunks: private,
                local_dup_chunks: local_dup,
                local_repeat: repeat,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Dump + restore is the identity for every strategy, K, and workload,
    /// even with no failures injected.
    #[test]
    fn prop_dump_restore_roundtrip(
        strategy in arb_strategy(),
        k in 1u32..5,
        n in 2u32..9,
        workload in arb_workload(),
    ) {
        let cluster = Cluster::new(Placement::one_per_node(n));
        let cfg = DumpConfig::paper_defaults(strategy)
            .with_replication(k)
            .with_chunk_size(128);
        let buffers: Vec<Vec<u8>> = (0..n).map(|r| workload.generate(r)).collect();
        let out = WorldConfig::default().launch(n, |comm| {
            let repl = Replicator::builder(strategy)
                .cluster(&cluster)
                .with_config(cfg)
                .build()
                .expect("valid config");
            repl.dump(comm, 1, buffers[comm.rank() as usize].clone()).expect("dump");
            Vec::from(repl.restore(comm, 1).expect("restore"))
        }).expect_all();
        for (r, restored) in out.results.iter().enumerate() {
            prop_assert_eq!(restored, &buffers[r], "rank {}", r);
        }
    }

    /// Restore survives failing any single node when K >= 2 (single-node
    /// failure is always tolerated regardless of replica placement).
    #[test]
    fn prop_restore_survives_any_single_failure(
        strategy in arb_strategy(),
        k in 2u32..5,
        n in 3u32..8,
        victim_seed in any::<u32>(),
        workload in arb_workload(),
    ) {
        let victim = victim_seed % n;
        let cluster = Cluster::new(Placement::one_per_node(n));
        let cfg = DumpConfig::paper_defaults(strategy)
            .with_replication(k)
            .with_chunk_size(128);
        let buffers: Vec<Vec<u8>> = (0..n).map(|r| workload.generate(r)).collect();
        let out = WorldConfig::default().launch(n, |comm| {
            let repl = Replicator::builder(strategy)
                .cluster(&cluster)
                .with_config(cfg)
                .build()
                .expect("valid config");
            repl.dump(comm, 1, buffers[comm.rank() as usize].clone()).expect("dump");
            comm.barrier();
            if comm.rank() == 0 {
                cluster.fail_node(victim);
                cluster.revive_node(victim);
            }
            comm.barrier();
            Vec::from(repl.restore(comm, 1).expect("restore after failure"))
        }).expect_all();
        for (r, restored) in out.results.iter().enumerate() {
            prop_assert_eq!(restored, &buffers[r], "rank {} after failing node {}", r, victim);
        }
    }

    /// World-wide traffic conservation: bytes sent == bytes received, and
    /// the per-dump stats agree with the runtime's own accounting.
    #[test]
    fn prop_traffic_conservation(
        strategy in arb_strategy(),
        k in 1u32..5,
        n in 2u32..8,
        workload in arb_workload(),
    ) {
        let cluster = Cluster::new(Placement::one_per_node(n));
        let cfg = DumpConfig::paper_defaults(strategy)
            .with_replication(k)
            .with_chunk_size(128);
        let buffers: Vec<Vec<u8>> = (0..n).map(|r| workload.generate(r)).collect();
        let out = WorldConfig::default().launch(n, |comm| {
            let repl = Replicator::builder(strategy)
                .cluster(&cluster)
                .with_config(cfg)
                .build()
                .expect("valid config");
            repl.dump(comm, 1, buffers[comm.rank() as usize].clone()).expect("dump")
        }).expect_all();
        let traffic_sent: u64 = out.traffic.total_sent();
        let traffic_recv: u64 = out.traffic.total_recv();
        prop_assert_eq!(traffic_sent, traffic_recv);
        let stats = WorldDumpStats::from_ranks(strategy, 128, out.results);
        let replica_sent: u64 = stats.ranks.iter().map(|r| r.bytes_sent_replication).sum();
        let replica_recv: u64 = stats.ranks.iter().map(|r| r.bytes_received_replication).sum();
        prop_assert_eq!(replica_sent, replica_recv);
    }

    /// Dedup accounting: unique content never exceeds the dataset; the
    /// strategies are ordered coll <= local <= no-dedup; per-rank chunk
    /// bookkeeping is internally consistent.
    #[test]
    fn prop_dedup_accounting(
        k in 1u32..4,
        n in 2u32..8,
        workload in arb_workload(),
    ) {
        let buffers: Vec<Vec<u8>> = (0..n).map(|r| workload.generate(r)).collect();
        let mut unique = Vec::new();
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            let cluster = Cluster::new(Placement::one_per_node(n));
            let cfg = DumpConfig::paper_defaults(strategy)
                .with_replication(k)
                .with_chunk_size(128);
            let out = WorldConfig::default().launch(n, |comm| {
                let repl = Replicator::builder(strategy)
                    .cluster(&cluster)
                    .with_config(cfg)
                    .build()
                    .expect("valid config");
                repl.dump(comm, 1, buffers[comm.rank() as usize].clone()).expect("dump")
            }).expect_all();
            let stats = WorldDumpStats::from_ranks(strategy, 128, out.results);
            for r in &stats.ranks {
                prop_assert_eq!(r.chunks_kept + r.chunks_discarded, r.chunks_locally_unique);
                prop_assert!(r.chunks_uncovered <= r.chunks_locally_unique);
                prop_assert_eq!(r.chunks_sent.len() as u32, k.min(n) - 1);
            }
            prop_assert!(stats.unique_content_bytes() <= stats.total_data_bytes());
            unique.push(stats.unique_content_bytes());
        }
        // no-dedup >= local-dedup >= coll-dedup.
        prop_assert!(unique[0] >= unique[1], "{unique:?}");
        prop_assert!(unique[1] >= unique[2], "{unique:?}");
    }

    /// Coll-dedup never stores more cluster-wide than local-dedup on the
    /// same inputs (it only removes surplus copies).
    #[test]
    fn prop_coll_storage_never_exceeds_local(
        k in 1u32..4,
        n in 2u32..8,
        workload in arb_workload(),
    ) {
        let buffers: Vec<Vec<u8>> = (0..n).map(|r| workload.generate(r)).collect();
        let mut device = Vec::new();
        for strategy in [Strategy::LocalDedup, Strategy::CollDedup] {
            let cluster = Cluster::new(Placement::one_per_node(n));
            let cfg = DumpConfig::paper_defaults(strategy)
                .with_replication(k)
                .with_chunk_size(128);
            WorldConfig::default().launch(n, |comm| {
                let repl = Replicator::builder(strategy)
                    .cluster(&cluster)
                    .with_config(cfg)
                    .build()
                    .expect("valid config");
                repl.dump(comm, 1, buffers[comm.rank() as usize].clone()).expect("dump");
            }).expect_all();
            device.push(cluster.total_unique_bytes());
        }
        prop_assert!(device[1] <= device[0], "coll {} > local {}", device[1], device[0]);
    }
}
