//! Integration tests for the phase-level observability layer
//! (`replidedup-trace`) threaded through dump and restore.
//!
//! Three promises from DESIGN.md:
//! 1. A coll-dedup dump is an SPMD program — every rank records the exact
//!    same span sequence, with all seven Algorithm-1 phases in order.
//! 2. Spans nest, stay balanced, and never leak from one dump into the
//!    trace of the next.
//! 3. A dump → node failure → restore round trip records the restore
//!    recovery phases and still reproduces every byte, for each strategy
//!    and K ∈ {2, 3}.

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{Replicator, Strategy};
use replidedup::mpi::{Event, EventKind, RankTrace, WorldConfig};
use replidedup::storage::{Cluster, Placement};

/// The seven phases of the paper's Algorithm 1, in execution order.
const ALG1_PHASES: [&str; 7] = [
    "local_dedup",
    "hmerge_reduce",
    "load_allgather",
    "rank_shuffle",
    "calc_off",
    "exchange",
    "commit",
];

fn buffers(n: u32) -> Vec<Vec<u8>> {
    let workload = SyntheticWorkload {
        chunk_size: 64,
        global_chunks: 4,
        grouped_chunks: 3,
        group_size: 2,
        private_chunks: 3,
        local_dup_chunks: 2,
        local_repeat: 2,
        seed: 7,
    };
    (0..n).map(|r| workload.generate(r)).collect()
}

/// Replay the span stream: enters and exits must pair up LIFO with
/// matching names, recorded depths must agree with the replay, and no
/// span may remain open at the end.
fn assert_balanced(events: &[Event]) {
    let mut stack: Vec<&str> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Enter => {
                assert_eq!(
                    e.depth as usize,
                    stack.len(),
                    "enter {:?} at wrong depth",
                    e.name
                );
                stack.push(e.name);
            }
            EventKind::Exit => {
                let top = stack
                    .pop()
                    .unwrap_or_else(|| panic!("exit {:?} with no open span", e.name));
                assert_eq!(top, e.name, "exit does not match innermost span");
                assert_eq!(
                    e.depth as usize,
                    stack.len(),
                    "exit {:?} at wrong depth",
                    e.name
                );
            }
            _ => {}
        }
    }
    assert!(
        stack.is_empty(),
        "spans leaked past end of stream: {stack:?}"
    );
}

fn span_sequence(events: &[Event]) -> Vec<(&'static str, bool)> {
    RankTrace {
        rank: 0,
        events: events.to_vec(),
    }
    .span_sequence()
}

#[test]
fn coll_dedup_dump_records_identical_phase_sequence_on_every_rank() {
    let n = 6;
    let cluster = Cluster::new(Placement::one_per_node(n));
    let bufs = buffers(n);
    let repl = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(3)
        .chunk_size(64)
        .build()
        .expect("valid config");

    let out = WorldConfig::traced()
        .launch(n, |comm| {
            repl.dump(comm, 1, &bufs[comm.rank() as usize])
                .expect("dump");
        })
        .expect_all();
    let trace = out.trace.expect("tracing was enabled");
    assert_eq!(trace.ranks.len(), n as usize);

    let reference = trace.ranks[0].span_sequence();
    assert!(!reference.is_empty());
    for rank in &trace.ranks {
        assert_balanced(&rank.events);
        assert_eq!(
            rank.span_sequence(),
            reference,
            "rank {} diverged from rank 0's phase sequence",
            rank.rank
        );
    }

    // All seven Algorithm-1 phases, in the paper's order, exactly once.
    let top_level: Vec<&str> = reference
        .iter()
        .filter(|(name, is_enter)| *is_enter && ALG1_PHASES.contains(name))
        .map(|(name, _)| *name)
        .collect();
    assert_eq!(top_level, ALG1_PHASES);
}

#[test]
fn spans_nest_and_do_not_leak_across_dumps() {
    let n = 4;
    let cluster = Cluster::new(Placement::one_per_node(n));
    let bufs = buffers(n);
    let repl = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(2)
        .chunk_size(64)
        .build()
        .expect("valid config");

    WorldConfig::traced()
        .launch(n, |comm| {
            let me = comm.rank() as usize;
            repl.dump(comm, 1, &bufs[me]).expect("first dump");
            // take_trace_events itself panics on an open span; the balance
            // check additionally verifies LIFO pairing and recorded depths.
            let first = comm.take_trace_events();
            assert!(
                !first.is_empty(),
                "tracing was on, first dump recorded nothing"
            );
            assert_balanced(&first);

            repl.dump(comm, 2, &bufs[me]).expect("second dump");
            let second = comm.take_trace_events();
            assert_balanced(&second);

            // Same program, fresh buffer: the second dump's span structure is
            // identical and carries nothing over from the first.
            assert_eq!(span_sequence(&first), span_sequence(&second));
        })
        .expect_all();
}

#[test]
fn traced_restore_after_node_failure_is_byte_exact_and_records_recovery_phases() {
    let n = 5;
    for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
        for k in [2u32, 3] {
            let cluster = Cluster::new(Placement::one_per_node(n));
            let bufs = buffers(n);
            let repl = Replicator::builder(strategy)
                .cluster(&cluster)
                .replication(k)
                .chunk_size(64)
                .build()
                .expect("valid config");

            let out = WorldConfig::traced()
                .launch(n, |comm| {
                    let me = comm.rank() as usize;
                    repl.dump(comm, 1, &bufs[me]).expect("dump");
                    comm.take_trace_events(); // isolate the restore trace
                    comm.barrier();
                    if comm.rank() == 0 {
                        cluster.fail_node(1);
                        cluster.revive_node(1);
                    }
                    comm.barrier();
                    let restored = repl.restore(comm, 1).expect("restore after failure");
                    (restored, comm.take_trace_events())
                })
                .expect_all();

            let expected: &[&str] = match strategy {
                Strategy::NoDedup => &["blob_recovery"],
                _ => &["manifest_recovery", "chunk_recovery", "reassemble"],
            };
            for (rank, (restored, events)) in out.results.iter().enumerate() {
                assert_eq!(
                    restored, &bufs[rank],
                    "{strategy:?} K={k}: rank {rank} restore not byte-exact"
                );
                assert_balanced(events);
                let entered: Vec<&str> = span_sequence(events)
                    .iter()
                    .filter(|(_, is_enter)| *is_enter)
                    .map(|(name, _)| *name)
                    .collect();
                for phase in expected {
                    assert!(
                        entered.contains(phase),
                        "{strategy:?} K={k}: rank {rank} restore trace missing \
                         {phase:?} (saw {entered:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn injected_crash_emits_fault_span_on_dying_rank_and_aggregation_stays_deterministic() {
    use replidedup::mpi::{FaultPlan, FaultTrigger, WorldTrace};
    use std::sync::Arc;
    use std::time::Duration;

    let n = 4;
    let run = || {
        let cluster = Arc::new(Cluster::new(Placement::one_per_node(n)));
        let bufs = buffers(n);
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(2)
            .chunk_size(64)
            .build()
            .expect("valid config");
        let hook = Arc::clone(&cluster);
        let plan = FaultPlan::new(3)
            .crash(2, FaultTrigger::PhaseStart("exchange".into()))
            .on_crash(move |r| hook.fail_node(hook.node_of(r)));
        let config = WorldConfig::traced()
            .with_recv_timeout(Duration::from_secs(2))
            .with_faults(plan);
        config.launch(n, |comm| {
            // Survivors degrade; the error value itself is not under test.
            let _ = repl.dump(comm, 1, &bufs[comm.rank() as usize]);
        })
    };

    let a = run();
    assert_eq!(a.crashed_ranks(), vec![2]);
    let trace_a = a.trace.expect("tracing was enabled");
    for rank in &trace_a.ranks {
        assert_balanced(&rank.events);
        let has_fault_span = rank
            .events
            .iter()
            .any(|e| e.name == "fault.injected" && e.kind == EventKind::Enter);
        assert_eq!(
            has_fault_span,
            rank.rank == 2,
            "fault.injected must appear on the dying rank and nowhere else \
             (rank {})",
            rank.rank
        );
    }
    // Structural invariants of the crashed run: phases before the death
    // are SPMD (one span per rank), every survivor lands in the degraded
    // commit, and exactly one fault span exists world-wide.
    let spans_of = |t: &WorldTrace, name: &str| -> u64 {
        t.aggregate()
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.spans)
    };
    assert_eq!(spans_of(&trace_a, "fault.injected"), 1);
    assert_eq!(spans_of(&trace_a, "local_dedup"), n as u64);
    assert_eq!(spans_of(&trace_a, "hmerge_reduce"), n as u64);
    assert_eq!(spans_of(&trace_a, "degraded_commit"), (n - 1) as u64);

    // World aggregation of a faulted run stays deterministic: a delay
    // fault perturbs timing without changing control flow, so two runs
    // must aggregate to the same phases in the same order with the same
    // span counts (timings of course differ). A *crash* fault does not
    // get this guarantee — where each survivor's pipeline aborts races
    // with message draining.
    let delayed = || {
        let cluster = Cluster::new(Placement::one_per_node(n));
        let bufs = buffers(n);
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(2)
            .chunk_size(64)
            .build()
            .expect("valid config");
        let plan = FaultPlan::new(3).delay(
            1,
            FaultTrigger::PhaseStart("exchange".into()),
            Duration::from_millis(30),
        );
        let config = WorldConfig::traced()
            .with_recv_timeout(Duration::from_secs(2))
            .with_faults(plan);
        let out = config.launch(n, |comm| {
            repl.dump(comm, 1, &bufs[comm.rank() as usize])
                .expect("delayed dump completes");
        });
        assert!(out.crashed_ranks().is_empty());
        out.trace.expect("tracing was enabled")
    };
    let shape = |t: &WorldTrace| -> Vec<(&'static str, u64)> {
        t.aggregate().iter().map(|p| (p.name, p.spans)).collect()
    };
    assert_eq!(
        shape(&delayed()),
        shape(&delayed()),
        "aggregated phase structure diverged between identical delayed runs"
    );
}
