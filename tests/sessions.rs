//! Scale-out runtime suite: the pooled rank scheduler and concurrent
//! labeled sessions (DESIGN.md §17).
//!
//! Three promises under test:
//! 1. Multiplexing is invisible: an oversubscribed worker pool (64 ranks
//!    on 4 workers) produces byte-identical dump/restore results *and*
//!    identical per-rank trace span sequences vs thread-per-rank — for
//!    every strategy and K ∈ {2, 3}.
//! 2. Sessions are isolated: two labeled sessions sharing one storage
//!    cluster can dump the same dump id concurrently without mixing
//!    generations, and a crash in session A never poisons session B —
//!    B's restore stays byte-exact under fault injection.
//! 3. Session labels are exclusive while live: building a second
//!    replicator with an active label is a typed
//!    `ConfigError::DuplicateSession`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{ConfigError, Replicator, Strategy, DUMP_PHASES};
use replidedup::mpi::{FaultPlan, RankOutcome, WorldConfig};
use replidedup::storage::{Cluster, Placement, SessionId};

/// Per-rank buffers with cross-rank redundancy so every strategy has real
/// dedup work to do.
fn buffers(n: u32, seed: u64) -> Vec<Vec<u8>> {
    let workload = SyntheticWorkload {
        chunk_size: 128,
        global_chunks: 3,
        grouped_chunks: 4,
        group_size: 4,
        private_chunks: 4,
        local_dup_chunks: 2,
        local_repeat: 2,
        seed,
    };
    (0..n).map(|r| workload.generate(r)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    /// Promise 1: pooled execution is observationally identical to
    /// thread-per-rank. 64 ranks multiplexed onto 4 workers dump and
    /// restore the same bytes and record the same span sequence per rank
    /// as the unpooled runtime, for every strategy × K ∈ {2, 3}.
    #[test]
    fn oversubscribed_pool_matches_thread_per_rank(seed in any::<u64>()) {
        const N: u32 = 64;
        const WORKERS: usize = 4;
        let bufs = buffers(N, seed);
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            for k in [2u32, 3] {
                let run = |workers: Option<usize>| {
                    let cluster = Cluster::new(Placement::one_per_node(N));
                    let mut config = WorldConfig::traced();
                    if let Some(w) = workers {
                        config = config.with_workers(w);
                    }
                    let out = config.launch(N, |comm| {
                        let repl = Replicator::builder(strategy)
                            .cluster(&cluster)
                            .replication(k)
                            .chunk_size(128)
                            .build()
                            .expect("valid config");
                        repl.dump(comm, 1, bufs[comm.rank() as usize].clone())
                            .expect("dump");
                        Vec::from(repl.restore(comm, 1).expect("restore"))
                    }).expect_all();
                    (out.results, out.trace.expect("tracing was enabled"))
                };
                let (pooled, pooled_trace) = run(Some(WORKERS));
                let (unpooled, unpooled_trace) = run(None);
                for rank in 0..N as usize {
                    prop_assert_eq!(
                        &pooled[rank], &bufs[rank],
                        "{:?} K={} seed={}: pooled rank {} restored wrong bytes",
                        strategy, k, seed, rank
                    );
                    prop_assert_eq!(
                        &pooled[rank], &unpooled[rank],
                        "{:?} K={} seed={}: rank {} differs across schedulers",
                        strategy, k, seed, rank
                    );
                    prop_assert_eq!(
                        pooled_trace.ranks[rank].span_sequence(),
                        unpooled_trace.ranks[rank].span_sequence(),
                        "{:?} K={} seed={}: rank {} trace diverged under multiplexing",
                        strategy, k, seed, rank
                    );
                }
            }
        }
    }
}

/// Promise 2: two labeled sessions against one cluster, running
/// concurrently on background schedulers, with session A's world under a
/// seeded crash plan. Session B's dump — same dump id, different bytes —
/// must commit and restore byte-exactly, and A's surviving ranks must
/// degrade, not wedge B.
#[test]
fn crash_in_one_session_does_not_poison_a_concurrent_one() {
    const N: u32 = 8;
    let cluster = Arc::new(Cluster::new(Placement::one_per_node(N)));
    let bufs_a = buffers(N, 0xA);
    let bufs_b = buffers(N, 0xB);

    let session_a = {
        let cluster = Arc::clone(&cluster);
        let bufs = bufs_a.clone();
        replidedup::mpi::sched::spawn("chaos-session-a", move || {
            // Rank crashes only: A's processes die mid-dump but the
            // storage nodes stay up. (Taking a node down would be shared
            // hardware damage — real for both sessions, not poisoning.)
            let plan = FaultPlan::seeded(17, N, 2, &DUMP_PHASES);
            let repl = Replicator::builder(Strategy::CollDedup)
                .cluster(&cluster)
                .replication(3)
                .chunk_size(128)
                .session_label("chaos-a")
                .build()
                .expect("valid config");
            let out = WorldConfig::default()
                .with_recv_timeout(Duration::from_secs(5))
                .with_faults(plan)
                .launch(N, |comm| repl.dump(comm, 1, &bufs[comm.rank() as usize]));
            // Survivors must degrade to a local commit, never error out.
            for (rank, o) in out.outcomes.iter().enumerate() {
                if let RankOutcome::Completed(Err(e)) = o {
                    panic!("session A rank {rank} failed instead of degrading: {e}");
                }
            }
            out.crashed_ranks()
        })
    };
    let session_b = {
        let cluster = Arc::clone(&cluster);
        let bufs = bufs_b.clone();
        replidedup::mpi::sched::spawn("chaos-session-b", move || {
            let repl = Replicator::builder(Strategy::CollDedup)
                .cluster(&cluster)
                .replication(3)
                .chunk_size(128)
                .session_label("chaos-b")
                .build()
                .expect("valid config");
            let out = WorldConfig::default()
                .launch(N, |comm| {
                    let stats = repl
                        .dump(comm, 1, &bufs[comm.rank() as usize])
                        .expect("session B dump succeeds despite A's crashes");
                    (
                        stats.session,
                        Vec::from(repl.restore(comm, 1).expect("session B restore")),
                    )
                })
                .expect_all();
            out.results
        })
    };

    let crashed_a = session_a.join().expect("session A world completes");
    assert!(
        !crashed_a.is_empty(),
        "the seeded plan must actually crash ranks in session A"
    );
    let results_b = session_b.join().expect("session B world completes");
    for (rank, (session, restored)) in results_b.iter().enumerate() {
        assert_ne!(
            *session,
            SessionId::DEFAULT,
            "session B stats must be stamped"
        );
        assert_eq!(
            restored, &bufs_b[rank],
            "rank {rank}: session B restored wrong bytes after A crashed {crashed_a:?}"
        );
    }
}

/// Promise 2, heal flavour: a labeled dump session under fault injection
/// racing a background heal session over one cluster. The healer works a
/// pre-damaged default-scope generation while the writer's world crashes
/// ranks mid-dump in its own session scope; the heal must converge and
/// the damaged generation restore byte-exactly — crashes in the writer
/// session never poison the healer.
#[test]
fn faulty_dump_session_does_not_poison_a_concurrent_heal_session() {
    const N: u32 = 6;
    let cluster = Arc::new(Cluster::new(Placement::one_per_node(N)));
    let bufs_v1 = buffers(N, 0x1);
    let bufs_v2 = buffers(N, 0x2);

    // Generation 1, default scope: dumped clean, then a node is replaced
    // with an empty device — the healer's work list.
    {
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(3)
            .chunk_size(128)
            .build()
            .expect("valid config");
        WorldConfig::default()
            .launch(N, |comm| {
                repl.dump(comm, 1, &bufs_v1[comm.rank() as usize])
                    .expect("seed dump");
            })
            .expect_all();
        cluster.fail_node(2);
        cluster.revive_node(2);
    }

    let writer = {
        let cluster = Arc::clone(&cluster);
        let bufs = bufs_v2.clone();
        replidedup::mpi::sched::spawn("chaos-writer", move || {
            let plan = FaultPlan::seeded(23, N, 2, &DUMP_PHASES);
            let repl = Replicator::builder(Strategy::CollDedup)
                .cluster(&cluster)
                .replication(3)
                .chunk_size(128)
                .session_label("chaos-writer")
                .build()
                .expect("valid config");
            let out = WorldConfig::default()
                .with_recv_timeout(Duration::from_secs(5))
                .with_faults(plan)
                .launch(N, |comm| repl.dump(comm, 1, &bufs[comm.rank() as usize]));
            for (rank, o) in out.outcomes.iter().enumerate() {
                if let RankOutcome::Completed(Err(e)) = o {
                    panic!("writer rank {rank} failed instead of degrading: {e}");
                }
            }
            out.crashed_ranks()
        })
    };
    let healer = {
        let cluster = Arc::clone(&cluster);
        replidedup::mpi::sched::spawn("chaos-healer", move || {
            let repl = Replicator::builder(Strategy::CollDedup)
                .cluster(&cluster)
                .replication(3)
                .chunk_size(128)
                .build()
                .expect("valid config");
            let out = WorldConfig::default()
                .launch(N, |comm| repl.heal(comm, 1))
                .expect_all();
            out.results
                .into_iter()
                .map(|r| r.expect("background heal succeeds"))
                .collect::<Vec<_>>()
        })
    };

    let crashed = writer.join().expect("writer world completes");
    assert!(
        !crashed.is_empty(),
        "the seeded plan must actually crash writer ranks"
    );
    let reports = healer.join().expect("healer world completes");
    assert!(
        reports[0].is_fully_healed(),
        "heal must converge despite the writer session crashing: {:?}",
        reports[0]
    );
    assert_eq!(reports[0].session, SessionId::DEFAULT);

    // The healed generation restores byte-exactly.
    let repl = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(3)
        .chunk_size(128)
        .build()
        .expect("valid config");
    let out = WorldConfig::default()
        .launch(N, |comm| {
            Vec::from(repl.restore(comm, 1).expect("restore healed generation"))
        })
        .expect_all();
    for (rank, restored) in out.results.iter().enumerate() {
        assert_eq!(
            restored, &bufs_v1[rank],
            "rank {rank}: healed generation corrupted by the writer session"
        );
    }
}

/// Promise 3: a live session label is exclusive; dropping the holder
/// frees it. (The unit tests cover the registry; this exercises it
/// through the public facade.)
#[test]
fn duplicate_live_session_label_is_a_typed_error() {
    let cluster = Cluster::new(Placement::one_per_node(4));
    let held = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(2)
        .session_label("exclusive")
        .build()
        .expect("first holder");
    let err = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(2)
        .session_label("exclusive")
        .build()
        .expect_err("second holder must be rejected");
    assert_eq!(
        err,
        ConfigError::DuplicateSession {
            label: "exclusive".into()
        }
    );
    drop(held);
    Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(2)
        .session_label("exclusive")
        .build()
        .expect("label is free again after drop");
}
