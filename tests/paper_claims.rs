//! The paper's qualitative claims, asserted at test scale.
//!
//! Absolute numbers depend on the testbed; what must reproduce is the
//! *shape* of every result: which strategy wins, how costs move with the
//! replication factor, and what the shuffle buys. Each test corresponds to
//! one claim of Section V (mapped in EXPERIMENTS.md).

use replidedup::bench::experiments::{
    dump_world, fig2, fig_k_sweep, fig_shuffle, tab1, STRATEGIES,
};
use replidedup::bench::workloads::{make_buffers, AppKind};
use replidedup::core::{DumpConfig, Strategy};

/// Scale factor used throughout: paper's 408 procs → ~33, runs in seconds.
const SCALE: f64 = 0.08;

#[test]
fn fig2_exact_numbers() {
    // "the maximum number of received chunks is lowered from 200 to 110".
    let f = fig2();
    assert_eq!(f.naive_max, 200);
    assert_eq!(f.shuffled_max, 110);
}

#[test]
fn fig3a_claim_dedup_hierarchy() {
    // "local-dedup identifies a large amount of data duplication [...]
    // going even further, coll-dedup manages a reduction down to as little
    // as 6% for HPCCG and 5% for CM1."
    for app in [AppKind::hpccg(), AppKind::cm1()] {
        let buffers = make_buffers(app, 33);
        let mut pct = Vec::new();
        for strategy in STRATEGIES {
            let run = dump_world(&buffers, DumpConfig::paper_defaults(strategy));
            pct.push(
                100.0 * run.stats.unique_content_bytes() as f64
                    / run.stats.total_data_bytes() as f64,
            );
        }
        assert!(
            (pct[0] - 100.0).abs() < 1e-9,
            "{}: no-dedup identifies nothing",
            app.label()
        );
        assert!(
            pct[1] < 60.0,
            "{}: local-dedup must find substantial duplication ({pct:?})",
            app.label()
        );
        assert!(
            pct[2] < 15.0,
            "{}: coll-dedup must reach single digits-ish ({pct:?})",
            app.label()
        );
        assert!(
            pct[2] < pct[1] / 2.0,
            "{}: coll must clearly beat local ({pct:?})",
            app.label()
        );
    }
}

#[test]
fn tab1_claim_ordering_and_speedups() {
    // Table I: coll-dedup beats local-dedup beats no-dedup at every scale;
    // at the largest scale the overhead gaps are severalfold.
    for app in [AppKind::hpccg(), AppKind::cm1()] {
        let rows = tab1(app, SCALE);
        for row in &rows {
            assert!(
                row.completion[0] > row.completion[1],
                "{}: {row:?}",
                app.label()
            );
            assert!(
                row.completion[1] > row.completion[2],
                "{}: {row:?}",
                app.label()
            );
            assert!(
                row.completion[2] >= row.baseline,
                "{}: {row:?}",
                app.label()
            );
        }
        let last = rows.last().expect("rows");
        let ovh = last.overhead();
        assert!(
            ovh[0] / ovh[2] > 4.0,
            "{}: no-dedup overhead must be severalfold coll-dedup's ({ovh:?})",
            app.label()
        );
        // At full scale the paper (and our repro) sees 2-2.8x; at this
        // test's ~33-rank scale the fixed hash+reduce floor compresses the
        // gap, so assert direction plus a modest margin here (the 408-rank
        // ratios are recorded in EXPERIMENTS.md from the repro run).
        assert!(
            ovh[1] / ovh[2] > 1.15,
            "{}: local-dedup overhead must exceed coll-dedup's ({ovh:?})",
            app.label()
        );
    }
}

#[test]
fn fig4a_5a_claim_k_scaling() {
    // "the scalability of no-dedup is poor when the replication factor
    // increases [...] coll-dedup exhibits excellent scalability: a
    // replication factor of six with coll-dedup is faster than a
    // minimalist replication scenario (factor two) with no-dedup and
    // local-dedup."
    for app in [AppKind::hpccg(), AppKind::cm1()] {
        let rows = fig_k_sweep(app, SCALE);
        let at = |k: u32| rows.iter().find(|r| r.k == k).expect("k present");
        // no-dedup overhead grows severalfold from K=1 to K=6.
        let growth = at(6).overhead_seconds[0] / at(1).overhead_seconds[0].max(1e-9);
        assert!(
            growth > 2.5,
            "{}: no-dedup K-growth too small: {growth}",
            app.label()
        );
        // coll-dedup stays nearly flat.
        let coll_growth = at(6).overhead_seconds[2] / at(2).overhead_seconds[2].max(1e-9);
        assert!(
            coll_growth < 2.5,
            "{}: coll-dedup must be nearly flat: {coll_growth}",
            app.label()
        );
        // Crossover: coll at K=6 cheaper than both baselines at K=2.
        assert!(
            at(6).overhead_seconds[2] < at(2).overhead_seconds[0],
            "{}: coll@K6 must beat no-dedup@K2",
            app.label()
        );
        // At full scale coll@K6 beats local@K2 outright; at ~33 ranks the
        // fixed reduction floor narrows it, so allow a small margin.
        assert!(
            at(6).overhead_seconds[2] < at(2).overhead_seconds[1] * 1.6,
            "{}: coll@K6 must be in the league of local-dedup@K2 ({} vs {})",
            app.label(),
            at(6).overhead_seconds[2],
            at(2).overhead_seconds[1]
        );
    }
}

#[test]
fn fig4b_5b_claim_traffic_reduction() {
    // "coll-dedup sends on the average [severalfold] less data to its
    // partners compared with local-dedup", with a growing avg/max gap.
    for app in [AppKind::hpccg(), AppKind::cm1()] {
        let rows = fig_k_sweep(app, SCALE);
        let at = |k: u32| rows.iter().find(|r| r.k == k).expect("k present");
        for k in [3u32, 6] {
            let r = at(k);
            assert!(
                r.avg_sent[2] * 2.0 < r.avg_sent[1],
                "{} K={k}: coll avg sent must be well below local ({:?})",
                app.label(),
                r.avg_sent
            );
            // no-dedup is uniform: avg == max.
            assert!(
                (r.max_sent[0] - r.avg_sent[0]).abs() < r.avg_sent[0] * 0.01 + 1.0,
                "{} K={k}: no-dedup send load must be uniform",
                app.label()
            );
            // coll-dedup is skewed: max well above avg.
            assert!(
                r.max_sent[2] > r.avg_sent[2] * 1.5,
                "{} K={k}: coll-dedup send load must be skewed",
                app.label()
            );
        }
    }
}

#[test]
fn fig4c_5c_claim_shuffle_helps_at_higher_k() {
    // "for a replication factor of two, there is no difference [...] with
    // increasing replication factor, the gap becomes clearly visible."
    for app in [AppKind::hpccg(), AppKind::cm1()] {
        let rows = fig_shuffle(app, SCALE);
        let at = |k: u32| rows.iter().find(|r| r.k == k).expect("k present");
        assert!(
            at(2).reduction_percent().abs() < 20.0,
            "{}: K=2 shuffle gain should be small ({:.1}%)",
            app.label(),
            at(2).reduction_percent()
        );
        let best = rows
            .iter()
            .map(|r| r.reduction_percent())
            .fold(f64::MIN, f64::max);
        assert!(
            best > 5.0,
            "{}: shuffling must visibly reduce the max receive size at some K (best {best:.1}%)",
            app.label()
        );
        for r in &rows {
            assert!(
                r.shuffle_max_recv <= r.no_shuffle_max_recv * 1.05,
                "{} K={}: shuffle must not hurt",
                app.label(),
                r.k
            );
        }
    }
}

#[test]
fn reduction_overhead_grows_slowly_with_k() {
    // Figures 3(b)/(c): "even if the list of designated ranks grows for
    // each fingerprint, the difference between the three coll-dedup curves
    // is small."
    use replidedup::bench::experiments::modeled_dump_seconds;
    let buffers = make_buffers(AppKind::hpccg(), 32);
    let mut totals = Vec::new();
    for k in [2u32, 4, 6] {
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_replication(k);
        let run = dump_world(&buffers, cfg);
        totals.push(modeled_dump_seconds(AppKind::hpccg(), &run.stats, 1 << 17));
    }
    assert!(
        totals[2] < totals[0] * 2.0,
        "K=6 reduction must stay within 2x of K=2: {totals:?}"
    );
}
