//! Zero-copy guarantees, end to end.
//!
//! Two promises of the `Chunk` hot path:
//!
//! 1. **No payload copy across a wire round-trip** — a payload attached to
//!    a [`FrameWriter`] comes back out of the receiving [`FrameReader`] as
//!    a view of the *same allocation* (pointer equality via
//!    [`Chunk::shares_allocation_with`]), both locally and across ranks.
//! 2. **Dump → restore is byte-exact** for every strategy × K ∈ {2, 3},
//!    under both copy modes, through the `Chunk`-based session API.

use proptest::prelude::*;
use replidedup::buf::Chunk;
use replidedup::core::{CopyMode, DumpConfig, Replicator, Strategy};
use replidedup::hash::Sha1ChunkHasher;
use replidedup::mpi::{FrameReader, FrameWriter, WorldConfig};
use replidedup::storage::{Cluster, Placement};

const STRATEGIES: [Strategy; 3] = [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup];
const CHUNK: usize = 512;

/// Deterministic per-rank buffers with cross-rank redundancy and a ragged
/// tail (not a multiple of the chunk size).
fn buffers(n: u32) -> Vec<Vec<u8>> {
    (0..n)
        .map(|r| {
            let mut b = Vec::new();
            for c in 0..24u32 {
                // Two thirds shared across ranks, one third rank-private.
                let fill = if c % 3 == 0 { 0x40 + r as u8 } else { c as u8 };
                b.extend(std::iter::repeat_n(fill, CHUNK));
            }
            b.extend_from_slice(&[r as u8; 129]); // ragged tail
            b
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Promise 1, locally: framing and unframing never copies a payload.
    #[test]
    fn wire_round_trip_shares_payload_allocations(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..2048), 1..8)
    ) {
        let chunks: Vec<Chunk> = payloads.iter().map(|p| Chunk::from(p.clone())).collect();
        let mut w = FrameWriter::new();
        for (i, c) in chunks.iter().enumerate() {
            w.put(&(i as u64));
            w.attach(c.clone());
        }
        let mut r = FrameReader::new(w.finish());
        for (i, c) in chunks.iter().enumerate() {
            let idx: u64 = r.get().unwrap();
            prop_assert_eq!(idx, i as u64);
            let got = r.take_payload().unwrap();
            prop_assert_eq!(&got[..], &c[..]);
            prop_assert!(
                got.shares_allocation_with(c),
                "payload {} was copied on the round-trip", i
            );
        }
        prop_assert_eq!(r.remaining(), 0);
    }
}

/// Promise 1, across ranks: the payload a rank receives over the
/// point-to-point layer is the very allocation the sender attached.
#[test]
fn comm_frame_round_trip_is_zero_copy_across_ranks() {
    const TAG: replidedup::mpi::Tag = 0x7A7A_0001;
    let out = WorldConfig::default()
        .launch(2, |comm| {
            if comm.rank() == 0 {
                let chunk = Chunk::from(vec![0xAB; 1 << 16]);
                let mut w = FrameWriter::new();
                w.put(&7u32);
                w.attach(chunk.clone());
                comm.try_send_frame(1, TAG, w.finish()).unwrap();
                chunk
            } else {
                let mut r = FrameReader::new(comm.try_recv_frame(0, TAG).unwrap());
                let marker: u32 = r.get().unwrap();
                assert_eq!(marker, 7);
                r.take_payload().unwrap()
            }
        })
        .expect_all();
    assert_eq!(out.results[0], out.results[1]);
    assert!(
        out.results[1].shares_allocation_with(&out.results[0]),
        "payload was copied crossing the wire"
    );
}

/// Promise 2: dump → restore is byte-exact for every strategy × K ∈ {2, 3}
/// under both copy modes, via the `Chunk`-based session API.
#[test]
fn dump_restore_byte_exact_all_strategies_and_k() {
    const N: u32 = 6;
    let bufs = buffers(N);
    for strategy in STRATEGIES {
        for k in [2u32, 3] {
            for mode in [CopyMode::ZeroCopy, CopyMode::Staged] {
                let cluster = Cluster::new(Placement::one_per_node(N));
                let cfg = DumpConfig::paper_defaults(strategy)
                    .with_replication(k)
                    .with_chunk_size(CHUNK)
                    .with_copy_mode(mode);
                let repl = Replicator::builder(strategy)
                    .with_config(cfg)
                    .cluster(&cluster)
                    .hasher(&Sha1ChunkHasher)
                    .build()
                    .expect("valid config");
                let chunks: Vec<Chunk> = bufs.iter().map(|b| Chunk::from(b.clone())).collect();
                let out = WorldConfig::default()
                    .launch(N, |comm| {
                        repl.dump(comm, 1, chunks[comm.rank() as usize].clone())
                            .expect("dump succeeds");
                        repl.restore(comm, 1).expect("restore succeeds")
                    })
                    .expect_all();
                for (rank, got) in out.results.iter().enumerate() {
                    assert!(
                        *got == bufs[rank],
                        "{} K={k} {}: rank {rank} restored wrong bytes",
                        strategy.label(),
                        mode.label()
                    );
                }
            }
        }
    }
}

/// Point-to-point owned-buffer sends deliver identical bytes whether the
/// payload is built from a `'static` slice or an owned allocation.
#[test]
fn send_bytes_delivers_identical_bytes() {
    const TAG_STATIC: replidedup::mpi::Tag = 0x7A7A_0002;
    const TAG_OWNED: replidedup::mpi::Tag = 0x7A7A_0003;
    let payload = vec![0x5C_u8; 4096];
    let sent = payload.clone();
    let out = WorldConfig::default()
        .launch(2, |comm| {
            if comm.rank() == 0 {
                comm.try_send_bytes(1, TAG_STATIC, bytes::Bytes::from_static(&[0x5C_u8; 4096]))
                    .unwrap();
                comm.try_send_bytes(1, TAG_OWNED, bytes::Bytes::from(sent.clone()))
                    .unwrap();
                (Vec::new(), Vec::new())
            } else {
                let from_static = comm.try_recv(0, TAG_STATIC).unwrap().to_vec();
                let owned = comm.try_recv(0, TAG_OWNED).unwrap().to_vec();
                (from_static, owned)
            }
        })
        .expect_all();
    let (from_static, owned) = &out.results[1];
    assert_eq!(from_static, &payload);
    assert_eq!(owned, &payload);
}
