//! Chunking-engine integration tests: proptest invariants over every
//! chunker, committed golden cut-point vectors, and the end-to-end
//! dedup-quality claim (CDC recovers shifted redundancy, fixed does not).
//!
//! The golden fixtures under `tests/golden/` pin the exact cut points of
//! the default-parameter Rabin and gear chunkers on a seeded 1 MiB
//! buffer. Cut points are on-disk format: chunk boundaries determine
//! fingerprints, so a silent change would orphan every stored chunk.
//! Regenerate (after a *deliberate* format change) with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test chunking -- --ignored regenerate
//! ```

use std::collections::HashSet;

use proptest::prelude::*;
use replidedup::bench::workloads::{make_buffers, AppKind};
use replidedup::core::{ChunkerKind, GearParams, RabinParams, Replicator, Strategy};
use replidedup::hash::{ChunkRange, Chunker, Sha1ChunkHasher};
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

// ------------------------------------------------------------------
// Shared helpers
// ------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random buffer.
fn seeded_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        out.extend_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Small-parameter chunkers so proptest cases stay fast while still
/// exercising min/avg/max interplay. The fixed stride is 64 bytes.
fn small_kinds() -> [ChunkerKind; 3] {
    [
        ChunkerKind::Fixed,
        ChunkerKind::Rabin(RabinParams {
            window: 16,
            mask: 63,
            mask_value: 0,
            min_size: 32,
            max_size: 512,
        }),
        ChunkerKind::Gear(GearParams {
            min_size: 32,
            avg_size: 64,
            max_size: 512,
        }),
    ]
}

const SMALL_FIXED: usize = 64;

fn assert_tiling(ranges: &[ChunkRange], len: usize, what: &str) {
    if len == 0 {
        assert!(
            ranges.is_empty(),
            "{what}: empty buffer must yield no chunks"
        );
        return;
    }
    assert_eq!(ranges[0].start, 0, "{what}: first chunk must start at 0");
    for w in ranges.windows(2) {
        assert_eq!(
            w[0].end, w[1].start,
            "{what}: gap or overlap between chunks"
        );
    }
    assert_eq!(
        ranges.last().unwrap().end,
        len,
        "{what}: last chunk must end at the buffer end"
    );
    assert!(
        ranges.iter().all(|r| !r.is_empty()),
        "{what}: no chunk may be empty"
    );
}

/// Min/max size bounds for one chunker kind. Every chunk respects the
/// max; every chunk but the last respects the min (the tail may be short).
fn assert_bounds(kind: ChunkerKind, ranges: &[ChunkRange], what: &str) {
    let (min, max) = match kind {
        ChunkerKind::Fixed => (SMALL_FIXED, SMALL_FIXED),
        ChunkerKind::Rabin(p) => (p.min_size, p.max_size),
        ChunkerKind::Gear(p) => (p.min_size, p.max_size),
        _ => unreachable!(),
    };
    for (i, r) in ranges.iter().enumerate() {
        assert!(
            r.len() <= max,
            "{what}: chunk {i} len {} > max {max}",
            r.len()
        );
        if i + 1 < ranges.len() {
            assert!(
                r.len() >= min,
                "{what}: non-tail chunk {i} len {} < min {min}",
                r.len()
            );
        }
    }
}

/// The multiset-free distinct-content overlap between two chunkings.
fn shared_chunk_contents(a: &[u8], ra: &[ChunkRange], b: &[u8], rb: &[ChunkRange]) -> usize {
    let set: HashSet<&[u8]> = ra.iter().map(|r| r.slice(a)).collect();
    rb.iter().filter(|r| set.contains(r.slice(b))).count()
}

// ------------------------------------------------------------------
// Proptest invariants (satellite 1)
// ------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every chunker tiles the buffer: contiguous, gap-free, complete.
    #[test]
    fn prop_chunks_tile_the_buffer(
        buf in proptest::collection::vec(any::<u8>(), 0..8192),
    ) {
        for kind in small_kinds() {
            let ranges = kind.resolve(SMALL_FIXED).chunks(&buf);
            assert_tiling(&ranges, buf.len(), kind.label());
        }
    }

    /// Every chunker respects its min/max size bounds.
    #[test]
    fn prop_chunks_respect_size_bounds(
        buf in proptest::collection::vec(any::<u8>(), 1..8192),
    ) {
        for kind in small_kinds() {
            let ranges = kind.resolve(SMALL_FIXED).chunks(&buf);
            assert_bounds(kind, &ranges, kind.label());
        }
    }

    /// Chunking is a pure function of the bytes.
    #[test]
    fn prop_chunking_is_deterministic(
        buf in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        for kind in small_kinds() {
            let chunker = kind.resolve(SMALL_FIXED);
            let a = chunker.chunks(&buf);
            let b = kind.resolve(SMALL_FIXED).chunks(&buf.clone());
            prop_assert_eq!(a, b, "{} must be deterministic", kind.label());
        }
    }

    /// Shift resilience: prepend a misaligning prefix and the CDC chunkers
    /// re-synchronize, reproducing most of the original chunks verbatim —
    /// while fixed chunking is demonstrably *not* shift-resilient: it
    /// recovers strictly fewer chunks than either CDC chunker (and almost
    /// none in absolute terms).
    #[test]
    fn prop_cdc_is_shift_resilient_and_fixed_is_not(
        seed in any::<u64>(),
        prefix_len in 1usize..63,
    ) {
        let base = seeded_bytes(seed, 32 * 1024);
        let mut shifted = seeded_bytes(!seed, prefix_len);
        shifted.extend_from_slice(&base);

        let mut shared = [0usize; 3];
        let mut total = [0usize; 3];
        for (i, kind) in small_kinds().into_iter().enumerate() {
            let chunker = kind.resolve(SMALL_FIXED);
            let ra = chunker.chunks(&base);
            let rb = chunker.chunks(&shifted);
            shared[i] = shared_chunk_contents(&base, &ra, &shifted, &rb);
            total[i] = ra.len();
        }
        let [fixed, rabin, gear] = shared;
        // CDC re-finds at least half the original chunks…
        prop_assert!(rabin * 2 >= total[1], "rabin shared only {rabin}/{}", total[1]);
        prop_assert!(gear * 2 >= total[2], "gear shared only {gear}/{}", total[2]);
        // …while fixed chunking finds (next to) nothing: the prefix is
        // never stride-aligned, so every 64-byte cell shifts.
        prop_assert!(fixed * 20 <= total[0], "fixed shared {fixed}/{} — too shift-resilient", total[0]);
        prop_assert!(fixed < rabin && fixed < gear,
            "fixed ({fixed}) must lose to rabin ({rabin}) and gear ({gear})");
    }
}

// ------------------------------------------------------------------
// Golden cut-point vectors (satellite 2)
// ------------------------------------------------------------------

/// The seeded buffer the golden vectors are computed over.
fn golden_buffer() -> Vec<u8> {
    seeded_bytes(0x676f_6c64_656e_2121, 1 << 20) // b"golden!!"
}

/// Default-parameter chunkers whose cut points are frozen on disk.
fn golden_kinds() -> [(&'static str, ChunkerKind); 2] {
    [
        ("rabin", ChunkerKind::Rabin(RabinParams::default())),
        ("gear", ChunkerKind::Gear(GearParams::default())),
    ]
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}_cuts.txt"))
}

fn cut_points(kind: ChunkerKind, buf: &[u8]) -> Vec<usize> {
    kind.resolve(4096)
        .chunks(buf)
        .iter()
        .map(|r| r.end)
        .collect()
}

#[test]
fn golden_cut_points_are_stable() {
    let buf = golden_buffer();
    for (name, kind) in golden_kinds() {
        let path = golden_path(name);
        let fixture = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        let want: Vec<usize> = fixture
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| l.parse().expect("fixture lines are offsets"))
            .collect();
        let got = cut_points(kind, &buf);
        assert!(!got.is_empty() && *got.last().unwrap() == buf.len());
        assert_eq!(
            got, want,
            "{name}: cut points diverged from the committed golden vector — \
             this breaks the on-disk chunk format (see tests/chunking.rs header)"
        );
    }
}

/// Rewrites the golden fixtures. Deliberately `#[ignore]`d and gated on
/// `REGEN_GOLDEN=1`: run only after an intentional chunker format change.
#[test]
#[ignore]
fn regenerate_golden_fixtures() {
    if std::env::var("REGEN_GOLDEN").as_deref() != Ok("1") {
        panic!("set REGEN_GOLDEN=1 to rewrite the golden fixtures");
    }
    let buf = golden_buffer();
    std::fs::create_dir_all(golden_path("x").parent().unwrap()).unwrap();
    for (name, kind) in golden_kinds() {
        let cuts = cut_points(kind, &buf);
        let mut body = format!(
            "# {name} chunker cut points (chunk end offsets) over the seeded 1 MiB\n\
             # buffer of tests/chunking.rs::golden_buffer(). Frozen on-disk format.\n"
        );
        for c in cuts {
            body.push_str(&format!("{c}\n"));
        }
        std::fs::write(golden_path(name), body).unwrap();
    }
}

// ------------------------------------------------------------------
// End-to-end dedup quality (satellite 3)
// ------------------------------------------------------------------

/// Dump the shifted-duplicate workload under one configuration; restore
/// byte-exact; return (total device bytes written, total replication
/// traffic sent over RMA windows).
fn dump_written(
    buffers: &[Vec<u8>],
    strategy: Strategy,
    shuffle: bool,
    k: u32,
    chunker: ChunkerKind,
) -> (u64, u64) {
    let n = buffers.len() as u32;
    let cluster = Cluster::new(Placement::pack(n, 2));
    let repl = Replicator::builder(strategy)
        .cluster(&cluster)
        .hasher(&Sha1ChunkHasher)
        .replication(k)
        .chunk_size(4096)
        .with_chunker(chunker)
        .shuffle(shuffle)
        .build()
        .expect("valid config");
    let stats = WorldConfig::default()
        .launch(n, |comm| {
            repl.dump(comm, 1, &buffers[comm.rank() as usize])
                .expect("dump succeeds")
        })
        .expect_all();
    let sent: u64 = stats.results.iter().map(|s| s.bytes_sent_replication).sum();
    let out = WorldConfig::default()
        .launch(n, |comm| repl.restore(comm, 1).expect("restore succeeds"))
        .expect_all();
    for (rank, restored) in out.results.iter().enumerate() {
        assert!(
            *restored == buffers[rank],
            "{} shuffle={shuffle} K={k} {}: rank {rank} restored wrong bytes",
            strategy.label(),
            chunker.label()
        );
    }
    (cluster.total_device_bytes(), sent)
}

#[test]
fn shifted_dup_restores_exactly_under_every_config_and_cdc_beats_fixed() {
    let buffers = make_buffers(AppKind::shifted_dup(), 4);
    let chunkers = [
        ChunkerKind::Fixed,
        ChunkerKind::Rabin(RabinParams::default()),
        ChunkerKind::Gear(GearParams::default()),
    ];
    // The four strategy configurations of the evaluation: the three
    // paper settings plus the coll-no-shuffle ablation.
    let configs = [
        (Strategy::NoDedup, true),
        (Strategy::LocalDedup, true),
        (Strategy::CollDedup, true),
        (Strategy::CollDedup, false),
    ];
    for k in [2, 3] {
        let mut written = std::collections::HashMap::new();
        let mut sent = std::collections::HashMap::new();
        for (strategy, shuffle) in configs {
            for chunker in chunkers {
                let (w, s) = dump_written(&buffers, strategy, shuffle, k, chunker);
                written.insert((strategy.label(), shuffle, chunker.label()), w);
                sent.insert((strategy.label(), shuffle, chunker.label()), s);
            }
        }
        // The dedup-quality claim: on shifted duplicates, content-defined
        // chunking stores strictly less than fixed chunking under both
        // dedup strategies (fixed sees no cross-rank redundancy at all;
        // the stores are content-addressed, so even local-dedup's device
        // footprint shrinks once chunks align across ranks).
        for strategy in ["local-dedup", "coll-dedup"] {
            let fixed = written[&(strategy, true, "fixed")];
            for cdc in ["rabin", "gear"] {
                let w = written[&(strategy, true, cdc)];
                assert!(
                    w < fixed,
                    "K={k} {strategy}: {cdc} wrote {w} bytes, fixed wrote {fixed} — \
                     CDC must strictly beat fixed on shifted duplicates"
                );
            }
        }
        // coll-dedup additionally beats local-dedup under CDC where the
        // paper says it must: replication *traffic*. Local-dedup still
        // ships every locally-unique chunk K times; coll-dedup ships each
        // globally-unique chunk only.
        assert!(
            sent[&("coll-dedup", true, "gear")] < sent[&("local-dedup", true, "gear")],
            "K={k}: coll-dedup must send less than local-dedup on cross-rank duplicates \
             ({} vs {})",
            sent[&("coll-dedup", true, "gear")],
            sent[&("local-dedup", true, "gear")]
        );
    }
}
