//! End-to-end chaos suite for the erasure-coding redundancy subsystem
//! (DESIGN.md §15, "Redundancy policies & erasure coding").
//!
//! Four promises under test, all under `Rs(4+2)` on a 6-node cluster —
//! the tightest geometry: every stripe spans all six nodes, so two node
//! losses leave *exactly* `k` shards and restore can only succeed through
//! Reed-Solomon reconstruction (coded payloads have no replicas at all):
//!
//! 1. Losing any `m = 2` nodes after a dump leaves every rank restorable
//!    byte-exactly — for every strategy and for fixed-size and
//!    content-defined chunking.
//! 2. `repair` after the same losses rebuilds the missing shards onto
//!    their home nodes, reports fully healed, and is idempotent: a second
//!    repair heals zero. A scrub afterwards is clean, and the *rebuilt*
//!    shards are real — a subsequent loss of two different nodes still
//!    restores byte-exactly.
//! 3. Losing more than `m` nodes degrades to typed data loss — never a
//!    panic, never a hang — and repair reports the dump unrepairable
//!    (stripes below `k` survivors) without inventing data.
//! 4. The dedup credit is visible end to end: under `coll-dedup` the
//!    cross-rank duplicate chunks stay replicated (no parity), while the
//!    same workload under `no-dedup` stripes every byte.

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{ChunkerKind, GearParams, RedundancyPolicy, Replicator, Strategy};
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

const N: u32 = 6;
const RS: RedundancyPolicy = RedundancyPolicy::Rs { k: 4, m: 2 };

/// Per-rank buffers with cross-rank redundancy (shared, grouped, and
/// rank-private chunks) so the dedup credit has something to credit.
fn buffers(n: u32) -> Vec<Vec<u8>> {
    let workload = SyntheticWorkload {
        chunk_size: 64,
        global_chunks: 4,
        grouped_chunks: 3,
        group_size: 2,
        private_chunks: 3,
        local_dup_chunks: 2,
        local_repeat: 2,
        seed: 42,
    };
    (0..n).map(|r| workload.generate(r)).collect()
}

fn replicator<'a>(
    strategy: Strategy,
    cluster: &'a Cluster,
    chunker: ChunkerKind,
) -> Replicator<'a> {
    Replicator::builder(strategy)
        .cluster(cluster)
        .replication(3)
        .chunk_size(64)
        .with_chunker(chunker)
        .with_policy(RS)
        .build()
        .expect("valid config")
}

/// Small-window Gear parameters so CDC produces multiple chunks from the
/// few-hundred-byte test buffers (the production defaults are KiB-scale).
fn small_gear() -> ChunkerKind {
    ChunkerKind::Gear(GearParams {
        min_size: 32,
        avg_size: 64,
        max_size: 512,
    })
}

/// Dump under `Rs(4+2)`, wipe the given nodes (fail, then revive empty —
/// a disk replacement), and restore in a fresh world. Returns each rank's
/// restore outcome.
fn dump_wipe_restore(
    strategy: Strategy,
    chunker: ChunkerKind,
    wiped: &[u32],
) -> Vec<Result<Vec<u8>, replidedup::core::ReplError>> {
    let bufs = buffers(N);
    let cluster = Cluster::new(Placement::one_per_node(N));
    let repl = replicator(strategy, &cluster, chunker);
    let out = WorldConfig::default()
        .launch(N, |comm| repl.dump(comm, 1, &bufs[comm.rank() as usize]))
        .expect_all();
    for r in out.results {
        r.expect("dump succeeds");
    }
    for &node in wiped {
        cluster.fail_node(node);
        cluster.revive_node(node);
    }
    let out = WorldConfig::default()
        .launch(N, |comm| repl.restore(comm, 1).map(Vec::from))
        .expect_all();
    out.results
}

/// Promise 1, exhaustively for the paper strategy: under `coll-dedup` ×
/// fixed chunking, *every* one of the C(6,2) = 15 two-node loss patterns
/// restores every rank byte-exactly from the surviving `k = 4` shards.
#[test]
fn any_two_node_losses_restore_byte_exactly_under_rs() {
    let bufs = buffers(N);
    for a in 0..N {
        for b in (a + 1)..N {
            let restored = dump_wipe_restore(Strategy::CollDedup, ChunkerKind::Fixed, &[a, b]);
            for (rank, r) in restored.iter().enumerate() {
                match r {
                    Ok(bytes) => assert_eq!(
                        bytes, &bufs[rank],
                        "loss {{{a},{b}}}: rank {rank} restored wrong bytes"
                    ),
                    Err(e) => panic!("loss {{{a},{b}}}: rank {rank} failed to restore: {e}"),
                }
            }
        }
    }
}

/// Promise 1 across the matrix: every strategy × {fixed, gear} chunking
/// survives an `m`-node wipe. (`no-dedup` stripes whole blobs; the dedup
/// strategies stripe chunks — both must reconstruct.)
#[test]
fn m_node_wipe_restores_across_strategies_and_chunkers() {
    let bufs = buffers(N);
    for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
        for chunker in [ChunkerKind::Fixed, small_gear()] {
            if strategy == Strategy::NoDedup && chunker != ChunkerKind::Fixed {
                continue; // no-dedup never chunks: one cell covers it
            }
            let restored = dump_wipe_restore(strategy, chunker, &[1, 4]);
            for (rank, r) in restored.iter().enumerate() {
                match r {
                    Ok(bytes) => assert_eq!(
                        bytes,
                        &bufs[rank],
                        "{strategy:?}/{}: rank {rank} restored wrong bytes",
                        chunker.label()
                    ),
                    Err(e) => panic!(
                        "{strategy:?}/{}: rank {rank} failed to restore: {e}",
                        chunker.label()
                    ),
                }
            }
        }
    }
}

/// Promise 2: repair rebuilds the wiped shards, reports fully healed, and
/// converges — the second run heals nothing. The rebuilt shards are then
/// load-bearing: wiping two *different* nodes afterwards still restores,
/// which only works if the reconstructed shards hold real data.
#[test]
fn repair_rebuilds_wiped_shards_and_is_idempotent() {
    let bufs = buffers(N);
    let cluster = Cluster::new(Placement::one_per_node(N));
    let repl = replicator(Strategy::CollDedup, &cluster, ChunkerKind::Fixed);
    let out = WorldConfig::default()
        .launch(N, |comm| repl.dump(comm, 1, &bufs[comm.rank() as usize]))
        .expect_all();
    for r in out.results {
        r.expect("dump succeeds");
    }
    let parity_before = cluster.total_parity_bytes();
    for node in [0u32, 3] {
        cluster.fail_node(node);
        cluster.revive_node(node);
    }

    let out = WorldConfig::default()
        .launch(N, |comm| repl.repair(comm, 1).expect("repair runs"))
        .expect_all();
    let first = &out.results[0];
    assert!(first.shards_rebuilt > 0, "wiped shards must be rebuilt");
    assert!(first.bytes_reconstructed > 0);
    assert!(
        first.is_fully_healed(),
        "two losses under Rs(4+2) are fully repairable: {first:?}"
    );
    assert_eq!(
        cluster.total_parity_bytes(),
        parity_before,
        "repair must restore the exact parity footprint"
    );

    let out = WorldConfig::default()
        .launch(N, |comm| repl.repair(comm, 1).expect("repair runs"))
        .expect_all();
    let second = &out.results[0];
    assert_eq!(second.shards_rebuilt, 0, "second repair must be a no-op");
    assert_eq!(second.chunks_healed, 0);
    assert_eq!(second.blobs_rematerialized, 0);
    assert!(second.is_fully_healed());

    let out = WorldConfig::default()
        .launch(N, |comm| repl.scrub(comm).expect("scrub runs"))
        .expect_all();
    let report = &out.results[0];
    assert!(
        report.is_clean(),
        "post-repair scrub must be clean: {report:?}"
    );
    assert!(report.shards_checked > 0, "stripe pass must have run");

    // The rebuilt shards on nodes 0 and 3 are now part of the survivor
    // set for a fresh two-node loss.
    for node in [2u32, 5] {
        cluster.fail_node(node);
        cluster.revive_node(node);
    }
    let out = WorldConfig::default()
        .launch(N, |comm| repl.restore(comm, 1).map(Vec::from))
        .expect_all();
    for (rank, r) in out.results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("restore after repair"),
            &bufs[rank],
            "rank {rank}: rebuilt shards did not round-trip"
        );
    }
}

/// Promise 3: more than `m` losses is typed loss, not a panic or a hang.
/// Every rank's private chunks drop below `k` surviving shards, so every
/// restore errors; repair flags the stripes as unrepairable and stays
/// stable across reruns instead of fabricating shards.
#[test]
fn losing_more_than_m_nodes_is_typed_loss_and_unrepairable() {
    let bufs = buffers(N);
    let cluster = Cluster::new(Placement::one_per_node(N));
    let repl = replicator(Strategy::CollDedup, &cluster, ChunkerKind::Fixed);
    let out = WorldConfig::default()
        .launch(N, |comm| repl.dump(comm, 1, &bufs[comm.rank() as usize]))
        .expect_all();
    for r in out.results {
        r.expect("dump succeeds");
    }
    for node in [0u32, 2, 4] {
        cluster.fail_node(node);
        cluster.revive_node(node);
    }

    let out = WorldConfig::default()
        .launch(N, |comm| repl.restore(comm, 1).map(Vec::from))
        .expect_all();
    for (rank, r) in out.results.iter().enumerate() {
        assert!(
            r.is_err(),
            "rank {rank}: 3 losses leave 3 < k=4 shards, restore cannot succeed"
        );
    }

    let out = WorldConfig::default()
        .launch(N, |comm| repl.repair(comm, 1).expect("repair returns"))
        .expect_all();
    let first = out.results[0].clone();
    assert!(!first.is_fully_healed(), "3 losses must not report healed");
    assert!(
        !first.unrepairable_stripes.is_empty(),
        "stripes below k survivors must be flagged"
    );
    let out = WorldConfig::default()
        .launch(N, |comm| repl.repair(comm, 1).expect("repair returns"))
        .expect_all();
    assert_eq!(
        out.results[0].unrepairable_stripes, first.unrepairable_stripes,
        "unrepairable verdict must be stable across reruns"
    );
    assert_eq!(out.results[0].shards_rebuilt, 0);
}

/// Promise 4: the dedup credit shows up as strictly less parity. The same
/// workload, the same `Rs(4+2)` policy — `coll-dedup` credits the
/// naturally distributed duplicates and stripes only the rest, while
/// `no-dedup` blindly stripes every rank's whole blob.
#[test]
fn dedup_credit_cuts_parity_versus_no_dedup() {
    let bufs = buffers(N);
    let mut parity = Vec::new();
    for strategy in [Strategy::NoDedup, Strategy::CollDedup] {
        let cluster = Cluster::new(Placement::one_per_node(N));
        let repl = replicator(strategy, &cluster, ChunkerKind::Fixed);
        let out = WorldConfig::default()
            .launch(N, |comm| repl.dump(comm, 1, &bufs[comm.rank() as usize]))
            .expect_all();
        for r in out.results {
            r.expect("dump succeeds");
        }
        parity.push(cluster.total_parity_bytes());
    }
    let (no_dedup, coll_dedup) = (parity[0], parity[1]);
    assert!(coll_dedup > 0, "private chunks still need parity");
    assert!(
        coll_dedup < no_dedup,
        "dedup credit must cut parity: coll {coll_dedup} vs none {no_dedup}"
    );
}
