//! Chaos suite for the continuous background healer (DESIGN.md §16):
//! incremental, resumable scrub/repair under live traffic.
//!
//! Promises under test:
//! 1. A heal resumed from an *arbitrary* persisted [`HealCursor`]
//!    position is idempotent and converges: for every strategy × policy
//!    and ≤ tolerance seed-chosen node losses, stopping the healer after
//!    a seed-chosen number of steps, round-tripping the cursor through
//!    its wire form and resuming heals everything — the follow-up
//!    monolithic repair finds zero work and every rank restores
//!    byte-exactly.
//! 2. The ISSUE's acceptance drill: a node crashes mid-dump (taking its
//!    storage), then the healer itself is killed mid-repair (second
//!    transfer window, via `start:heal.transfer#2`) — and a fresh healer
//!    resumed from the last persisted cursor still converges.
//! 3. Healing runs *under* live traffic: a foreground dump of a newer
//!    generation and a background heal of an older one interleave on the
//!    same cluster without corrupting either generation.
//! 4. The superseded-generation GC step reclaims old dumps without
//!    touching chunks the surviving generation still references.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{
    HealCursor, HealOptions, HealReport, RedundancyPolicy, Replicator, Strategy,
};
use replidedup::mpi::wire::Wire;
use replidedup::mpi::{FaultPlan, FaultTrigger, WorldConfig};
use replidedup::storage::{Cluster, Placement};

const N: u32 = 6;
const DUMP: u64 = 1;

/// Small windows so even the test-sized workloads take several steps per
/// stage — resumability is only meaningful with multiple windows.
fn small_windows() -> HealOptions {
    HealOptions {
        chunk_batch: 8,
        owner_batch: 2,
        stripe_batch: 8,
        ..HealOptions::default()
    }
}

fn buffers(n: u32) -> Vec<Vec<u8>> {
    let workload = SyntheticWorkload {
        chunk_size: 64,
        global_chunks: 4,
        grouped_chunks: 3,
        group_size: 2,
        private_chunks: 3,
        local_dup_chunks: 2,
        local_repeat: 2,
        seed: 7,
    };
    (0..n).map(|r| workload.generate(r)).collect()
}

fn replicator<'a>(
    strategy: Strategy,
    cluster: &'a Cluster,
    policy: RedundancyPolicy,
    opts: HealOptions,
) -> Replicator<'a> {
    Replicator::builder(strategy)
        .cluster(cluster)
        .replication(3)
        .chunk_size(64)
        .with_policy(policy)
        .heal_options(opts)
        .build()
        .expect("valid config")
}

/// The bench drill's policy axis: replication, pure Reed-Solomon, and
/// the automatic per-chunk choice — each with the node losses it
/// tolerates by construction.
fn policies() -> [(&'static str, RedundancyPolicy, u32); 3] {
    [
        ("rep3", RedundancyPolicy::Replicate(3), 2),
        ("rs4+2", RedundancyPolicy::Rs { k: 4, m: 2 }, 2),
        (
            "auto4+2",
            RedundancyPolicy::Auto {
                k: 4,
                m: 2,
                replicate_below: 1 << 10,
            },
            2,
        ),
    ]
}

/// Seed-derived distinct victim nodes (SplitMix64 spread).
fn seeded_victims(seed: u64, count: u32) -> Vec<u32> {
    let mut x = seed;
    let mut victims = Vec::new();
    while victims.len() < count as usize {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let node = ((z ^ (z >> 31)) % u64::from(N)) as u32;
        if !victims.contains(&node) {
            victims.push(node);
        }
    }
    victims.sort_unstable();
    victims
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Promise 1: stop the healer after an arbitrary number of steps,
    /// persist the cursor through its wire bytes, resume — converged,
    /// byte-exact, and the monolithic repair agrees there is nothing
    /// left. Mixed policies, both storage formats, ≤ tolerance losses.
    #[test]
    fn heal_resumed_from_arbitrary_cursor_position_converges(seed in any::<u64>()) {
        let stop_after = 1 + (seed % 7);
        for strategy in [Strategy::CollDedup, Strategy::NoDedup] {
            for (label, policy, tolerance) in policies() {
                let bufs = buffers(N);
                let cluster = Cluster::new(Placement::one_per_node(N));
                let repl = replicator(strategy, &cluster, policy, small_windows());
                let out = WorldConfig::default().launch(N, |comm| {
                    repl.dump(comm, DUMP, &bufs[comm.rank() as usize]).map(|_| ())
                }).expect_all();
                prop_assert!(out.results.iter().all(Result::is_ok));

                let victims = seeded_victims(seed, tolerance);
                for &node in &victims {
                    cluster.fail_node(node);
                    cluster.revive_node(node); // replacement disk, empty
                }

                let out = WorldConfig::default().launch(N, |comm| {
                    let mut cursor = HealCursor::new(DUMP);
                    let mut head = HealReport::default();
                    for _ in 0..stop_after {
                        if !repl.heal_step(comm, &mut cursor, &mut head)? {
                            break;
                        }
                    }
                    // Kill the healer: all that survives is the cursor's
                    // wire bytes. A fresh healer picks them up.
                    let mut resumed = HealCursor::from_bytes(&cursor.to_bytes())
                        .expect("cursor wire round-trip");
                    let tail = repl.heal_from(comm, &mut resumed)?;
                    let after = repl.repair(comm, DUMP)?;
                    Ok::<_, replidedup::core::ReplError>((resumed, tail, after))
                }).expect_all();
                for r in &out.results {
                    let (cursor, tail, after) = r.as_ref().unwrap_or_else(|e| {
                        panic!("{strategy:?} {label} seed={seed}: heal failed: {e}")
                    });
                    prop_assert!(cursor.is_done());
                    prop_assert!(
                        tail.is_fully_healed(),
                        "{strategy:?} {label} seed={seed} victims={victims:?}: {tail:?}"
                    );
                    prop_assert!(after.is_fully_healed());
                    prop_assert_eq!(after.chunks_healed, 0, "heal left repair no chunk work");
                    prop_assert_eq!(after.manifests_rematerialized, 0);
                    prop_assert_eq!(after.blobs_rematerialized, 0);
                    prop_assert_eq!(after.shards_rebuilt, 0, "heal left repair no shard work");
                }

                let out = WorldConfig::default().launch(N, |comm| repl.restore(comm, DUMP)).expect_all();
                for (rank, r) in out.results.iter().enumerate() {
                    let bytes = r.as_ref().unwrap_or_else(|e| {
                        panic!("{strategy:?} {label} seed={seed}: rank {rank} restore: {e}")
                    });
                    prop_assert_eq!(bytes, &bufs[rank], "rank {} bytes", rank);
                }
            }
        }
    }
}

/// Promise 2, the ISSUE's acceptance drill: gen 2's dump crashes rank 3
/// (its node's storage dies with it), the replacement disk comes up
/// empty, and the healer mending gen 1 is itself killed the moment its
/// *second* transfer window opens. The last cursor persisted before the
/// kill — wire bytes, as an operator would store them — seeds a fresh
/// healer that converges; gen 1 restores byte-exactly everywhere.
#[test]
fn healer_killed_mid_heal_resumes_from_persisted_cursor() {
    let bufs = buffers(N);
    let cluster = Arc::new(Cluster::new(Placement::one_per_node(N)));
    let repl = replicator(
        Strategy::CollDedup,
        &cluster,
        RedundancyPolicy::Replicate(3),
        small_windows(),
    );

    let out = WorldConfig::default()
        .launch(N, |comm| {
            repl.dump(comm, DUMP, &bufs[comm.rank() as usize])
                .map(|_| ())
        })
        .expect_all();
    assert!(out.results.iter().all(Result::is_ok), "healthy gen 1");

    // Gen 2 dies mid-commit: rank 3 crashes and takes its node down.
    let hook = Arc::clone(&cluster);
    let plan = FaultPlan::new(11)
        .crash(3, FaultTrigger::PhaseStart("commit".into()))
        .on_crash(move |rank| hook.fail_node(hook.node_of(rank)));
    let config = WorldConfig::default()
        .with_recv_timeout(Duration::from_secs(2))
        .with_faults(plan);
    let out = config.launch(N, |comm| {
        repl.dump(comm, 2, &bufs[comm.rank() as usize]).map(|_| ())
    });
    assert_eq!(out.crashed_ranks(), vec![3], "the dump crash must fire");
    for node in 0..N {
        if !cluster.is_alive(node) {
            cluster.revive_node(node); // replacement disk, empty
        }
    }

    // Heal gen 1, persisting the cursor after every completed step; the
    // healer (rank 4) is killed when the second transfer window opens.
    // No storage hook — killing a healer process leaves disks intact.
    let persisted = Arc::new(Mutex::new(Vec::new()));
    let plan = FaultPlan::new(12).crash(4, FaultTrigger::PhaseStartNth("heal.transfer".into(), 2));
    let config = WorldConfig::default()
        .with_recv_timeout(Duration::from_secs(2))
        .with_faults(plan);
    let store = Arc::clone(&persisted);
    let out = config.launch(N, move |comm| {
        let mut cursor = HealCursor::new(DUMP);
        let mut report = HealReport::default();
        loop {
            match repl.heal_step(comm, &mut cursor, &mut report) {
                Ok(true) => {
                    if comm.rank() == 0 {
                        *store.lock().unwrap() = cursor.to_bytes().to_vec();
                    }
                }
                Ok(false) => break, // finished before the kill landed
                Err(_) => break,    // the kill reached this rank's step
            }
        }
    });
    assert_eq!(out.crashed_ranks(), vec![4], "the healer kill must fire");

    let snapshot = persisted.lock().unwrap().clone();
    let mut resumed = HealCursor::from_bytes(&snapshot).expect("persisted cursor decodes");
    assert!(
        !resumed.is_done() && resumed.steps_taken > 0,
        "the kill must land mid-heal: {resumed:?}"
    );

    // A fresh healer in a fresh world resumes from the snapshot.
    let repl = replicator(
        Strategy::CollDedup,
        &cluster,
        RedundancyPolicy::Replicate(3),
        small_windows(),
    );
    let cursor0 = resumed.clone();
    let out = WorldConfig::default()
        .launch(N, |comm| {
            let mut cursor = cursor0.clone();
            repl.heal_from(comm, &mut cursor).map(|r| (cursor, r))
        })
        .expect_all();
    for r in &out.results {
        let (cursor, report) = r.as_ref().expect("resumed heal succeeds");
        assert!(cursor.is_done());
        assert!(
            report.is_fully_healed(),
            "resumed heal converges: {report:?}"
        );
    }
    resumed = out.results[0].as_ref().unwrap().0.clone();
    assert!(resumed.steps_taken > 0);

    let out = WorldConfig::default()
        .launch(N, |comm| repl.restore(comm, DUMP))
        .expect_all();
    for (rank, r) in out.results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("restore after resumed heal"),
            &bufs[rank],
            "rank {rank} restored wrong bytes"
        );
    }
}

/// Promise 3: a background heal of gen 1 and a foreground dump of gen 2
/// run *simultaneously* — two worlds, two thread pools, one cluster —
/// and both generations come out intact. The heal only ever considers
/// committed gen-1 state, so the in-flight gen 2 is invisible to it.
#[test]
fn heal_interleaves_with_a_live_foreground_dump() {
    let bufs = buffers(N);
    let cluster = Arc::new(Cluster::new(Placement::one_per_node(N)));
    {
        let repl = replicator(
            Strategy::CollDedup,
            &cluster,
            RedundancyPolicy::Replicate(3),
            small_windows(),
        );
        let out = WorldConfig::default()
            .launch(N, |comm| {
                repl.dump(comm, DUMP, &bufs[comm.rank() as usize])
                    .map(|_| ())
            })
            .expect_all();
        assert!(out.results.iter().all(Result::is_ok));
        cluster.fail_node(5);
        cluster.revive_node(5);
    }

    let healer = {
        let cluster = Arc::clone(&cluster);
        replidedup::mpi::sched::spawn("bg-healer", move || {
            let repl = replicator(
                Strategy::CollDedup,
                &cluster,
                RedundancyPolicy::Replicate(3),
                small_windows(),
            );
            let out = WorldConfig::default()
                .launch(N, |comm| repl.heal(comm, DUMP))
                .expect_all();
            out.results
                .into_iter()
                .map(|r| r.expect("background heal succeeds"))
                .collect::<Vec<_>>()
        })
    };
    let dumper = {
        let cluster = Arc::clone(&cluster);
        let bufs = bufs.clone();
        replidedup::mpi::sched::spawn("bg-dumper", move || {
            let repl = replicator(
                Strategy::CollDedup,
                &cluster,
                RedundancyPolicy::Replicate(3),
                small_windows(),
            );
            let out = WorldConfig::default()
                .launch(N, |comm| {
                    repl.dump(comm, 2, &bufs[comm.rank() as usize]).map(|_| ())
                })
                .expect_all();
            assert!(out.results.iter().all(Result::is_ok), "foreground dump");
        })
    };
    let reports = healer.join().expect("healer thread");
    dumper.join().expect("dumper thread");
    assert!(reports.iter().all(HealReport::is_fully_healed));

    let repl = replicator(
        Strategy::CollDedup,
        &cluster,
        RedundancyPolicy::Replicate(3),
        small_windows(),
    );
    for gen in [DUMP, 2] {
        let out = WorldConfig::default()
            .launch(N, |comm| repl.restore(comm, gen))
            .expect_all();
        for (rank, r) in out.results.iter().enumerate() {
            assert_eq!(
                r.as_ref()
                    .unwrap_or_else(|e| panic!("gen {gen} rank {rank}: {e}")),
                &bufs[rank],
                "gen {gen} rank {rank} restored wrong bytes"
            );
        }
    }
}

/// Promise 4: with `gc_before` set, the heal's first step collects the
/// superseded generation — and the surviving generation still restores,
/// proving shared content-addressed chunks were not swept with it.
#[test]
fn heal_gc_step_reclaims_superseded_generations_safely() {
    let bufs = buffers(N);
    let cluster = Cluster::new(Placement::one_per_node(N));
    let repl = replicator(
        Strategy::CollDedup,
        &cluster,
        RedundancyPolicy::Replicate(3),
        HealOptions {
            gc_before: Some(2),
            ..small_windows()
        },
    );
    let out = WorldConfig::default()
        .launch(N, |comm| {
            // Gen 1 and gen 2 share most chunks (same workload, one byte of
            // per-generation skew via the dump id in the first chunk).
            let mut buf = bufs[comm.rank() as usize].clone();
            repl.dump(comm, DUMP, &buf)?;
            buf[0] ^= 0x5A;
            repl.dump(comm, 2, &buf)?;
            let mut cursor = HealCursor::new(2);
            let report = repl.heal_from(comm, &mut cursor)?;
            repl.restore(comm, 2).map(|r| (report, Vec::from(r), buf))
        })
        .expect_all();
    for (rank, r) in out.results.iter().enumerate() {
        let (report, restored, expected) = r.as_ref().expect("heal with gc succeeds");
        assert_eq!(report.gc.generations_collected, 1, "gen 1 swept");
        assert!(report.is_fully_healed());
        assert_eq!(restored, expected, "rank {rank}: gen 2 intact after gc");
    }
    assert_eq!(cluster.generations(), vec![2], "only gen 2 remains at rest");
}
