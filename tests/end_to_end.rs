//! End-to-end integration: real apps → checkpoint runtime → collective
//! dump → node failures → restart, across all strategies.

use replidedup::apps::{Cm1, Cm1Config, Hpccg, HpccgConfig};
use replidedup::ckpt::{CheckpointRuntime, TrackedHeap};
use replidedup::core::{DumpConfig, Strategy};
use replidedup::hash::Sha1ChunkHasher;
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

const STRATEGIES: [Strategy; 3] = [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup];

fn hpccg_cfg() -> HpccgConfig {
    HpccgConfig {
        nx: 6,
        ny: 6,
        nz: 6,
        slack_factor: 0.5,
        private_factor: 0.1,
    }
}

#[test]
fn hpccg_checkpoint_failure_restart_converges_for_all_strategies() {
    for strategy in STRATEGIES {
        let cluster = Cluster::new(Placement::one_per_node(6));
        let cfg = DumpConfig::paper_defaults(strategy).with_replication(3);
        let out = WorldConfig::default()
            .launch(6, |comm| {
                let rank = comm.rank();
                let mut app = Hpccg::new(rank, comm.size(), hpccg_cfg());
                let mut heap = TrackedHeap::default();
                let regions = app.alloc_regions(&mut heap);
                let mut rt = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);

                app.run(comm, 10);
                app.sync_to_heap(&mut heap, &regions);
                rt.checkpoint(comm, &mut heap).expect("checkpoint");
                let reference_after_20 = {
                    // Keep solving to iteration 20 as the reference trajectory.
                    let mut probe = app.clone();
                    probe.run(comm, 10);
                    probe.state().0.to_vec()
                };

                // Two nodes die (K-1 = 2 tolerated).
                comm.barrier();
                if rank == 0 {
                    for node in [1, 4] {
                        cluster.fail_node(node);
                        cluster.revive_node(node);
                    }
                }
                comm.barrier();

                // Restart from the checkpoint and replay to iteration 20.
                let heap2 = rt.restart(comm).expect("restart");
                let mut replay =
                    Hpccg::load_from_heap(&heap2, &regions, rank, comm.size(), hpccg_cfg());
                assert_eq!(replay.iterations(), 10);
                replay.run(comm, 10);
                let replayed = replay.state().0.to_vec();
                (reference_after_20, replayed)
            })
            .expect_all();
        for (rank, (reference, replayed)) in out.results.iter().enumerate() {
            assert_eq!(
                reference, replayed,
                "{strategy:?} rank {rank}: replay diverged"
            );
        }
    }
}

#[test]
fn cm1_periodic_dumps_and_restart_match_uninterrupted_run() {
    let model = Cm1Config {
        nx: 32,
        ny_per_rank: 8,
        vortex_radius: 4.0,
        ..Default::default()
    };
    let cluster = Cluster::new(Placement::one_per_node(4));
    let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_replication(2);
    let out = WorldConfig::default()
        .launch(4, |comm| {
            let rank = comm.rank();
            let mut app = Cm1::new(rank, comm.size(), model);
            let mut heap = TrackedHeap::default();
            let regions = app.alloc_regions(&mut heap);
            let mut rt = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);

            // Paper cadence: checkpoint every 30 steps of a 70-step run.
            let mut reference = Vec::new();
            for step in 1..=70u64 {
                app.step(comm);
                if step % 30 == 0 {
                    app.sync_to_heap(&mut heap, &regions);
                    rt.checkpoint(comm, &mut heap).expect("checkpoint");
                }
            }
            reference.extend_from_slice(app.theta());

            // Lose a node, restart from checkpoint 2 (step 60), replay 10 steps.
            comm.barrier();
            if rank == 0 {
                cluster.fail_node(2);
                cluster.revive_node(2);
            }
            comm.barrier();
            let heap2 = rt.restart_from(comm, 2).expect("restart");
            let mut replay = Cm1::load_from_heap(&heap2, &regions, rank, comm.size(), model);
            assert_eq!(replay.steps(), 60);
            replay.run(comm, 10);
            (reference, replay.theta().to_vec())
        })
        .expect_all();
    for (rank, (reference, replayed)) in out.results.iter().enumerate() {
        assert_eq!(reference, replayed, "rank {rank}: replay diverged");
    }
}

#[test]
fn multi_generation_checkpoints_restore_any_generation() {
    let cluster = Cluster::new(Placement::one_per_node(4));
    let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
        .with_replication(2)
        .with_chunk_size(256);
    let out = WorldConfig::default()
        .launch(4, |comm| {
            let rank = comm.rank();
            let mut heap = TrackedHeap::new(256);
            let region = heap.alloc(1024);
            let mut rt = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);
            for gen in 1..=3u8 {
                heap.write(region, 0, &vec![gen * 10 + rank as u8; 1024]);
                rt.checkpoint(comm, &mut heap).expect("checkpoint");
            }
            let mut snapshots = Vec::new();
            for gen in 1..=3u64 {
                let h = rt.restart_from(comm, gen).expect("restore generation");
                snapshots.push(h.read(region)[0]);
            }
            (rank, snapshots)
        })
        .expect_all();
    for (rank, snaps) in out.results {
        assert_eq!(
            snaps,
            vec![10 + rank as u8, 20 + rank as u8, 30 + rank as u8]
        );
    }
}

#[test]
fn chunks_have_k_copies_on_distinct_nodes_for_private_data() {
    // Replication invariant on collision-free workloads (all-private
    // chunks): every chunk ends up on exactly K distinct nodes.
    for strategy in [Strategy::LocalDedup, Strategy::CollDedup] {
        for k in [1u32, 2, 3, 4] {
            let n = 6u32;
            let cluster = Cluster::new(Placement::one_per_node(n));
            let repl = replidedup::core::Replicator::builder(strategy)
                .cluster(&cluster)
                .replication(k)
                .chunk_size(128)
                .build()
                .expect("valid config");
            let out = WorldConfig::default()
                .launch(n, |comm| {
                    // 4 private chunks per rank.
                    let buf: Vec<u8> = (0..512u32)
                        .map(|i| {
                            (comm.rank() as u8)
                                .wrapping_mul(31)
                                .wrapping_add((i / 128) as u8)
                        })
                        .collect();
                    repl.dump(comm, 1, &buf).expect("dump")
                })
                .expect_all();
            drop(out);
            for node in 0..n {
                let manifest = cluster.get_manifest(node, node, 1).expect("own manifest");
                for fp in &manifest.chunks {
                    assert_eq!(
                        cluster.copies_of(fp),
                        k,
                        "{strategy:?} K={k}: chunk of rank {node} has wrong copy count"
                    );
                }
            }
        }
    }
}

#[test]
fn globally_shared_data_keeps_exactly_k_copies_under_coll_dedup() {
    let n = 8u32;
    let k = 3u32;
    let cluster = Cluster::new(Placement::one_per_node(n));
    let repl = replidedup::core::Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(k)
        .chunk_size(128)
        .build()
        .expect("valid config");
    WorldConfig::default()
        .launch(n, |comm| {
            let buf = vec![0xEE; 128 * 5]; // identical on every rank
            repl.dump(comm, 1, &buf).expect("dump");
        })
        .expect_all();
    use replidedup::hash::ChunkHasher as _;
    let fp = replidedup::hash::Sha1ChunkHasher.fingerprint(&[0xEE; 128]);
    assert_eq!(
        cluster.copies_of(&fp),
        k,
        "natural replicas must be counted toward K"
    );
    // Total storage is K chunks, not N or N*K.
    assert_eq!(cluster.total_unique_bytes(), u64::from(k) * 128);
}

#[test]
fn mixed_chunk_sizes_roundtrip() {
    use replidedup::core::Replicator;
    for chunk_size in [64usize, 100, 4096, 10_000] {
        let cluster = Cluster::new(Placement::one_per_node(3));
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&cluster)
            .replication(2)
            .chunk_size(chunk_size)
            .build()
            .expect("valid config");
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let buf: Vec<u8> = (0..12_345u32)
                    .map(|i| (i as u8) ^ comm.rank() as u8)
                    .collect();
                repl.dump(comm, 1, &buf).expect("dump");
                let restored = repl.restore(comm, 1).expect("restore");
                restored == buf
            })
            .expect_all();
        assert!(out.results.iter().all(|&ok| ok), "chunk size {chunk_size}");
    }
}
