//! Seeded chaos suite for the deterministic fault-injection harness
//! (DESIGN.md §10, "Fault model").
//!
//! Four promises under test:
//! 1. Crashing at most K−1 ranks mid-dump never loses a survivor's data:
//!    after a restart (fresh world, dead nodes revived empty), every
//!    surviving rank restores its buffer byte-exactly — for every strategy
//!    and K ∈ {2, 3}, with crash points drawn from a seeded schedule over
//!    the dump's phase boundaries.
//! 2. The same seed replays the same schedule: the crashed-rank set and
//!    every restored byte are identical across runs.
//! 3. Losing more than K−1 ranks degrades to a *typed* data-loss error
//!    (`RestoreError::AbsentAtDump`) — never a panic, never a hang.
//! 4. A rank that stops participating surfaces as
//!    `CommError::DeadlockSuspected` with rank/tag context through
//!    `ReplError::source()`, bounded by the injected receive timeout.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{ReplError, Replicator, RestoreError, Strategy, DUMP_PHASES};
use replidedup::mpi::{CommError, FaultPlan, FaultTrigger, RankOutcome, WorldConfig};
use replidedup::storage::{Cluster, Placement};

const N: u32 = 6;

/// Per-rank buffers with cross-rank redundancy so every strategy has real
/// dedup work to do (same workload shape as tests/trace.rs).
fn buffers(n: u32) -> Vec<Vec<u8>> {
    let workload = SyntheticWorkload {
        chunk_size: 64,
        global_chunks: 4,
        grouped_chunks: 3,
        group_size: 2,
        private_chunks: 3,
        local_dup_chunks: 2,
        local_repeat: 2,
        seed: 7,
    };
    (0..n).map(|r| workload.generate(r)).collect()
}

fn replicator(strategy: Strategy, cluster: &Cluster, k: u32) -> Replicator<'_> {
    Replicator::builder(strategy)
        .cluster(cluster)
        .replication(k)
        .chunk_size(64)
        .build()
        .expect("valid config")
}

/// One full chaos round: a faulted dump (crashing ranks take their node's
/// storage down with them), then a restart — dead nodes revived empty — and
/// a fresh-world restore. Returns the crashed-rank set and each rank's
/// restore outcome. Panics if a *surviving* rank's dump errors: survivors
/// must always degrade to a local commit, not fail.
fn run_chaos(
    strategy: Strategy,
    k: u32,
    plan: FaultPlan,
) -> (Vec<u32>, Vec<Result<Vec<u8>, ReplError>>) {
    let bufs = buffers(N);
    let cluster = Arc::new(Cluster::new(Placement::one_per_node(N)));
    let hook = Arc::clone(&cluster);
    let plan = plan.on_crash(move |rank| hook.fail_node(hook.node_of(rank)));
    let config = WorldConfig::default()
        .with_recv_timeout(Duration::from_secs(2))
        .with_faults(plan);
    let repl = replicator(strategy, &cluster, k);

    let out = config.launch(N, |comm| repl.dump(comm, 1, &bufs[comm.rank() as usize]));
    let crashed = out.crashed_ranks();
    for (rank, o) in out.outcomes.iter().enumerate() {
        if let RankOutcome::Completed(Err(e)) = o {
            panic!("surviving rank {rank} failed its dump instead of degrading: {e}");
        }
    }

    // Restart: replacement hardware comes up empty.
    for node in 0..N {
        if !cluster.is_alive(node) {
            cluster.revive_node(node);
        }
    }
    let out = WorldConfig::default()
        .launch(N, |comm| repl.restore(comm, 1).map(Vec::from))
        .expect_all();
    (crashed, out.results)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Promise 1: for every strategy × K ∈ {2, 3}, a seeded schedule of at
    /// most K−1 mid-dump crashes leaves every survivor restorable
    /// byte-exactly. (A planned crash whose phase is never reached — e.g.
    /// preempted by an earlier victim's death — simply does not fire;
    /// `crashed` is the set that actually died.)
    #[test]
    fn seeded_crashes_of_at_most_k_minus_1_never_lose_survivor_data(seed in any::<u64>()) {
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            for k in [2u32, 3] {
                let plan = FaultPlan::seeded(seed, N, k - 1, &DUMP_PHASES);
                let bufs = buffers(N);
                let (crashed, restored) = run_chaos(strategy, k, plan);
                prop_assert!(
                    crashed.len() <= (k - 1) as usize,
                    "{crashed:?} crashed under a {}-crash plan", k - 1
                );
                for (rank, r) in restored.iter().enumerate() {
                    if crashed.contains(&(rank as u32)) {
                        // A dead rank's restore may succeed (it crashed
                        // after committing) or report typed loss; either
                        // way it returned instead of hanging.
                        continue;
                    }
                    match r {
                        Ok(bytes) => prop_assert!(
                            bytes == &bufs[rank],
                            "{strategy:?} K={k} seed={seed}: rank {rank} restored wrong bytes"
                        ),
                        Err(e) => prop_assert!(
                            false,
                            "{strategy:?} K={k} seed={seed}: surviving rank {rank} lost data: {e}"
                        ),
                    }
                }
            }
        }
    }
}

/// Promise 2: the schedule is deterministic. The same seed always derives
/// the same fault plan, and for a single-crash plan the victim's trigger
/// phase is always reached, so two runs crash the same rank and restore
/// the same bytes. (With several planned crashes only the *plan* is exactly
/// replayable: an earlier victim's death can preempt a later victim before
/// its trigger phase, downgrading it to a degraded survivor — and per-rank
/// `DumpStats` race on which collective first observes a death.)
#[test]
fn same_seed_replays_the_same_crash_schedule_and_bytes() {
    let seed = 0xD15EA5E;

    // Plan derivation itself is a pure function of the seed.
    assert_eq!(
        FaultPlan::seeded(seed, N, 2, &DUMP_PHASES).faults,
        FaultPlan::seeded(seed, N, 2, &DUMP_PHASES).faults,
        "seeded plan derivation must be deterministic"
    );

    let (crashed_a, restored_a) = run_chaos(
        Strategy::CollDedup,
        3,
        FaultPlan::seeded(seed, N, 1, &DUMP_PHASES),
    );
    let (crashed_b, restored_b) = run_chaos(
        Strategy::CollDedup,
        3,
        FaultPlan::seeded(seed, N, 1, &DUMP_PHASES),
    );
    assert_eq!(crashed_a, crashed_b, "same seed must crash the same rank");
    assert!(!crashed_a.is_empty(), "seeded plan must fire at least once");
    for rank in 0..N as usize {
        let (a, b) = (&restored_a[rank], &restored_b[rank]);
        assert_eq!(
            a.is_ok(),
            b.is_ok(),
            "rank {rank}: restore outcome diverged between replays"
        );
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a, b, "rank {rank}: restored bytes diverged between replays");
        }
    }
}

/// Promise 3: more than K−1 failures is typed data loss, not a panic or a
/// hang. Both victims die before writing anything, so after the restart
/// their restores report `AbsentAtDump` while every survivor still gets
/// its bytes back — and the whole round resolves in seconds.
#[test]
fn losing_more_than_k_minus_1_ranks_is_typed_data_loss_not_a_hang() {
    for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
        let t0 = Instant::now();
        let k = 2;
        let plan = FaultPlan::new(11)
            .crash(1, FaultTrigger::PhaseStart("local_dedup".into()))
            .crash(4, FaultTrigger::PhaseStart("local_dedup".into()));
        let bufs = buffers(N);
        let (crashed, restored) = run_chaos(strategy, k, plan);
        assert_eq!(crashed, vec![1, 4]);
        for (rank, r) in restored.iter().enumerate() {
            if crashed.contains(&(rank as u32)) {
                match r {
                    Err(ReplError::Restore(RestoreError::AbsentAtDump {
                        rank: lost,
                        dump_id,
                    })) => {
                        assert_eq!(*lost, rank as u32);
                        assert_eq!(*dump_id, 1);
                    }
                    other => panic!(
                        "{strategy:?}: dead rank {rank} expected typed AbsentAtDump, got {other:?}"
                    ),
                }
            } else {
                assert_eq!(
                    r.as_ref().expect("survivor restores"),
                    &bufs[rank],
                    "{strategy:?}: surviving rank {rank} restored wrong bytes"
                );
            }
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "{strategy:?}: fault round took {:?} — failure path is hanging",
            t0.elapsed()
        );
    }
}

/// Promise 4: a non-participating peer is reported as a typed
/// `DeadlockSuspected` carrying rank/tag context, reachable through the
/// `ReplError::source()` chain, after the *injected* per-test receive
/// timeout (300 ms here, not the generous production default).
#[test]
fn nonparticipating_rank_surfaces_as_deadlock_suspected_with_context() {
    use std::error::Error as _;

    let n = 2;
    let t0 = Instant::now();
    let cluster = Cluster::new(Placement::one_per_node(n));
    let repl = replicator(Strategy::NoDedup, &cluster, 2);
    let config = WorldConfig::default().with_recv_timeout(Duration::from_millis(300));
    let out = config
        .launch(n, |comm| {
            if comm.rank() == 1 {
                // Rank 1 never enters the dump: rank 0's first collective can
                // only resolve by timeout. The sleep keeps rank 1's channels
                // alive well past it, so rank 0 sees a suspected deadlock and
                // not a world teardown.
                std::thread::sleep(Duration::from_millis(1500));
                return None;
            }
            Some(repl.dump(comm, 1, &[7u8; 256]))
        })
        .expect_all();

    let err = out.results[0]
        .as_ref()
        .expect("rank 0 dumped")
        .as_ref()
        .expect_err("dump cannot complete without rank 1");
    match err {
        ReplError::RankFailure(CommError::DeadlockSuspected {
            rank, src, waited, ..
        }) => {
            assert_eq!(*rank, 0);
            assert_eq!(*src, 1);
            assert!(*waited >= Duration::from_millis(300));
        }
        other => panic!("expected typed DeadlockSuspected, got {other:?}"),
    }
    // Human-readable context and an intact source chain.
    let msg = err.to_string();
    assert!(msg.contains("rank"), "display lacks rank context: {msg}");
    let src = err.source().expect("ReplError::RankFailure has a source");
    assert!(
        matches!(
            src.downcast_ref::<CommError>(),
            Some(CommError::DeadlockSuspected { .. })
        ),
        "source chain must end in the CommError"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "deadlock detection took {:?} — injected timeout not honored",
        t0.elapsed()
    );
}
