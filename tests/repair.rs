//! Seeded chaos suite for the self-healing layer (DESIGN.md §11):
//! integrity scrubbing, collective replication repair, retrying restore.
//!
//! Promises under test:
//! 1. After failing at most K−1 nodes of a healthy dump and reviving them
//!    empty, one repair collective brings every chunk referenced by the
//!    dump back to `min(K, live_nodes)` intact copies, re-materializes
//!    every rank's manifest (or blob, for `no-dedup`) on its own node, and
//!    the subsequent restore is byte-exact — for every strategy and
//!    K ∈ {2, 3}, with the failed-node set drawn from the seed.
//! 2. Repair is idempotent and crash-safe: a rank crash in the middle of
//!    the transfer phase (taking its node's storage with it) surfaces as a
//!    typed error, and re-running the repair after reviving converges to
//!    the same healed invariants.
//! 3. Scrub reports exactly the injected corruptions; repair quarantines
//!    and re-replicates them; the post-repair scrub is clean.
//! 4. Injected transient device hiccups are absorbed by the restore retry
//!    policy (visible in the `restore_retries` counter), not surfaced as
//!    errors.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{Replicator, Strategy};
use replidedup::mpi::{EventKind, FaultPlan, FaultTrigger, WorldConfig};
use replidedup::storage::{Cluster, Placement};

const N: u32 = 6;
const DUMP: u64 = 1;

fn buffers(n: u32) -> Vec<Vec<u8>> {
    let workload = SyntheticWorkload {
        chunk_size: 64,
        global_chunks: 4,
        grouped_chunks: 3,
        group_size: 2,
        private_chunks: 3,
        local_dup_chunks: 2,
        local_repeat: 2,
        seed: 7,
    };
    (0..n).map(|r| workload.generate(r)).collect()
}

fn replicator(strategy: Strategy, cluster: &Cluster, k: u32) -> Replicator<'_> {
    Replicator::builder(strategy)
        .cluster(cluster)
        .replication(k)
        .chunk_size(64)
        .build()
        .expect("valid config")
}

/// Derive up to `count` distinct victim nodes from a seed (SplitMix64
/// step, same mixer the fault plan uses — any deterministic spread works).
fn seeded_victims(seed: u64, count: u32) -> Vec<u32> {
    let mut x = seed;
    let mut victims = Vec::new();
    while victims.len() < count as usize {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let node = ((z ^ (z >> 31)) % u64::from(N)) as u32;
        if !victims.contains(&node) {
            victims.push(node);
        }
    }
    victims.sort_unstable();
    victims
}

/// The healed-cluster invariant: every rank's recipe is back on its own
/// node and everything it references has at least `min(K, live)` copies.
fn assert_healed(cluster: &Cluster, strategy: Strategy, k: u32, label: &str) {
    let live = (0..N).filter(|&nd| cluster.is_alive(nd)).count() as u32;
    let target = k.min(live);
    for rank in 0..N {
        let node = cluster.node_of(rank);
        if strategy == Strategy::NoDedup {
            let copies = (0..N)
                .filter(|&nd| cluster.has_blob(nd, rank, DUMP))
                .count() as u32;
            assert!(
                copies >= target,
                "{label}: rank {rank}'s blob has {copies} copies, need {target}"
            );
            assert!(
                cluster.has_blob(node, rank, DUMP),
                "{label}: rank {rank}'s blob not re-materialized on its own node"
            );
            continue;
        }
        let manifest = cluster
            .get_manifest(node, rank, DUMP)
            .unwrap_or_else(|e| panic!("{label}: rank {rank}'s manifest not on its node: {e}"));
        for fp in &manifest.chunks {
            let copies = cluster.copies_of(fp);
            assert!(
                copies >= target,
                "{label}: chunk {fp} of rank {rank} has {copies} copies, need {target}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Promise 1: fail ≤ K−1 seed-chosen nodes after a healthy dump,
    /// revive them empty, repair once — full replication is back and every
    /// rank restores byte-exactly with zero degraded paths.
    #[test]
    fn repair_heals_k_minus_1_node_failures_back_to_full_replication(seed in any::<u64>()) {
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            for k in [2u32, 3] {
                let bufs = buffers(N);
                let cluster = Cluster::new(Placement::one_per_node(N));
                let repl = replicator(strategy, &cluster, k);
                let out = WorldConfig::default().launch(N, |comm| {
                    repl.dump(comm, DUMP, &bufs[comm.rank() as usize]).map(|_| ())
                }).expect_all();
                prop_assert!(out.results.iter().all(Result::is_ok));

                let victims = seeded_victims(seed, k - 1);
                for &node in &victims {
                    cluster.fail_node(node);
                    cluster.revive_node(node); // replacement comes up empty
                }

                let out = WorldConfig::default().launch(N, |comm| repl.repair(comm, DUMP)).expect_all();
                for (rank, r) in out.results.iter().enumerate() {
                    let stats = r.as_ref().unwrap_or_else(|e| {
                        panic!("{strategy:?} K={k} seed={seed}: rank {rank} repair failed: {e}")
                    });
                    prop_assert!(
                        stats.is_fully_healed(),
                        "{strategy:?} K={k} seed={seed} victims={victims:?}: \
                         losses within K-1 must be repairable: {stats:?}"
                    );
                    prop_assert_eq!(
                        r.as_ref().unwrap(),
                        out.results[0].as_ref().unwrap(),
                        "all ranks must agree on the repair stats"
                    );
                }
                assert_healed(&cluster, strategy, k, "after repair");

                // Second repair finds nothing to do (idempotency).
                let out = WorldConfig::default().launch(N, |comm| repl.repair(comm, DUMP)).expect_all();
                for r in &out.results {
                    let stats = r.as_ref().expect("idempotent repair");
                    prop_assert_eq!(stats.chunks_healed, 0, "re-repair must be a no-op");
                    prop_assert_eq!(stats.manifests_rematerialized, 0);
                    prop_assert_eq!(stats.blobs_rematerialized, 0);
                }

                let out = WorldConfig::default().launch(N, |comm| repl.restore(comm, DUMP)).expect_all();
                for (rank, r) in out.results.iter().enumerate() {
                    let bytes = r.as_ref().unwrap_or_else(|e| {
                        panic!("{strategy:?} K={k} seed={seed}: rank {rank} restore failed: {e}")
                    });
                    prop_assert_eq!(bytes, &bufs[rank], "rank {} restored wrong bytes", rank);
                }
            }
        }
    }
}

/// Promise 2: a rank crash mid-transfer (its node's storage dies with it)
/// leaves a typed error, and re-running the repair after reviving
/// converges to the healed invariants.
#[test]
fn crash_during_repair_transfer_then_rerun_converges() {
    let k = 3;
    let bufs = buffers(N);
    let cluster = Arc::new(Cluster::new(Placement::one_per_node(N)));
    let repl = replicator(Strategy::CollDedup, &cluster, k);

    let out = WorldConfig::default()
        .launch(N, |comm| {
            repl.dump(comm, DUMP, &bufs[comm.rank() as usize])
                .map(|_| ())
        })
        .expect_all();
    assert!(out.results.iter().all(Result::is_ok));

    // One node lost and revived empty: the repair has real work to do.
    cluster.fail_node(2);
    cluster.revive_node(2);

    // Crash rank 4 the moment the transfer phase opens; its node's
    // storage goes down with it.
    let hook = Arc::clone(&cluster);
    let plan = FaultPlan::new(99)
        .crash(4, FaultTrigger::PhaseStart("repair.transfer".into()))
        .on_crash(move |rank| hook.fail_node(hook.node_of(rank)));
    let config = WorldConfig::default()
        .with_recv_timeout(Duration::from_secs(2))
        .with_faults(plan);
    let out = config.launch(N, |comm| repl.repair(comm, DUMP));
    assert_eq!(out.crashed_ranks(), vec![4], "the planned crash must fire");

    // Restart: the crashed node is replaced, the repair is re-run.
    for node in 0..N {
        if !cluster.is_alive(node) {
            cluster.revive_node(node);
        }
    }
    let out = WorldConfig::default()
        .launch(N, |comm| repl.repair(comm, DUMP))
        .expect_all();
    for r in &out.results {
        let stats = r.as_ref().expect("rerun repair succeeds");
        assert!(stats.is_fully_healed(), "rerun must converge: {stats:?}");
    }
    assert_healed(&cluster, Strategy::CollDedup, k, "after crash + rerun");

    let out = WorldConfig::default()
        .launch(N, |comm| repl.restore(comm, DUMP))
        .expect_all();
    for (rank, r) in out.results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("restore after healed rerun"),
            &bufs[rank],
            "rank {rank} restored wrong bytes"
        );
    }
}

/// Promise 3: scrub finds exactly the injected corruptions; repair heals
/// them (quarantine + re-replicate); the post-repair scrub is clean and
/// the restore byte-exact.
#[test]
fn scrub_detects_exactly_injected_corruptions_and_repair_heals_them() {
    let k = 2;
    let bufs = buffers(N);
    let cluster = Cluster::new(Placement::one_per_node(N));
    let repl = replicator(Strategy::CollDedup, &cluster, k);

    let out = WorldConfig::default()
        .launch(N, |comm| {
            repl.dump(comm, DUMP, &bufs[comm.rank() as usize])
                .map(|_| ())
        })
        .expect_all();
    assert!(out.results.iter().all(Result::is_ok));

    // Rot one stored chunk on each of two nodes — distinct fingerprints,
    // so each corrupted chunk keeps one intact copy (K=2) to heal from.
    let fp1 = cluster.chunk_fps(1).expect("live node")[0];
    let fp4 = *cluster
        .chunk_fps(4)
        .expect("live node")
        .iter()
        .find(|fp| **fp != fp1)
        .expect("node 4 holds more than one chunk");
    assert!(cluster.corrupt_chunk(1, &fp1).unwrap());
    assert!(cluster.corrupt_chunk(4, &fp4).unwrap());
    let mut injected = vec![(1u32, fp1), (4u32, fp4)];
    injected.sort_unstable();

    let out = WorldConfig::default()
        .launch(N, |comm| repl.scrub(comm))
        .expect_all();
    for r in &out.results {
        let report = r.as_ref().expect("scrub succeeds");
        assert_eq!(
            report.corrupt, injected,
            "scrub must report exactly the injected corruptions"
        );
        assert!(report.chunks_checked > 0);
        assert!(!report.is_clean());
    }

    let out = WorldConfig::default()
        .launch(N, |comm| repl.repair(comm, DUMP))
        .expect_all();
    for r in &out.results {
        let stats = r.as_ref().expect("repair succeeds");
        assert_eq!(
            stats.corrupt_quarantined,
            injected.len() as u64,
            "repair must quarantine what scrub found"
        );
        assert!(
            stats.is_fully_healed(),
            "corruption within K-1 copies heals"
        );
    }
    assert_healed(&cluster, Strategy::CollDedup, k, "after corruption repair");

    let out = WorldConfig::default()
        .launch(N, |comm| repl.scrub(comm))
        .expect_all();
    for r in &out.results {
        assert!(
            r.as_ref().expect("scrub succeeds").is_clean(),
            "post-repair scrub must be clean"
        );
    }

    let out = WorldConfig::default()
        .launch(N, |comm| repl.restore(comm, DUMP))
        .expect_all();
    for (rank, r) in out.results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("restore after corruption repair"),
            &bufs[rank],
            "rank {rank} restored wrong bytes"
        );
    }
}

/// Promise 4: transient device hiccups within the retry budget are
/// absorbed silently — the restore succeeds byte-exactly and the retries
/// show up in the `restore_retries` counter instead of an error.
#[test]
fn transient_hiccups_are_absorbed_by_the_restore_retry_policy() {
    let bufs = buffers(N);
    let cluster = Cluster::new(Placement::one_per_node(N));
    let repl = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(2)
        .chunk_size(64)
        .tracing(true)
        .build()
        .expect("valid config");

    let out = WorldConfig::default()
        .launch(N, |comm| {
            repl.dump(comm, DUMP, &bufs[comm.rank() as usize])
                .map(|_| ())
        })
        .expect_all();
    assert!(out.results.iter().all(Result::is_ok));

    // Two consecutive reads on node 0 will fail before the device
    // recovers — within the default 4-attempt budget.
    cluster.inject_transient(0, 2).expect("live node");

    let out = WorldConfig::default()
        .launch(N, |comm| {
            let restored = repl.restore(comm, DUMP);
            let retries: u64 = comm
                .take_trace_events()
                .iter()
                .filter(|e| e.name == "restore_retries")
                .map(|e| match e.kind {
                    EventKind::Counter(v) => v,
                    _ => 0,
                })
                .sum();
            (comm.rank(), restored, retries)
        })
        .expect_all();
    let mut total_retries = 0;
    for (rank, restored, retries) in out.results {
        assert_eq!(
            restored
                .as_ref()
                .expect("transient must not fail the restore"),
            &bufs[rank as usize],
            "rank {rank} restored wrong bytes"
        );
        total_retries += retries;
    }
    assert!(
        total_retries > 0,
        "the absorbed hiccups must be visible in the restore_retries counter"
    );
}
